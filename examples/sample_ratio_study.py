#!/usr/bin/env python
"""When can you trust the analytical model?  A SAMPLE-style study.

The paper's synthetic kernel exists to answer one question: how does
MPI-SIM-AM's accuracy depend on the communication-to-computation ratio?
This example sweeps the ratio on the SGI Origin 2000 for both
communication patterns and prints accuracy next to the simulator's own
cost savings, so you can see the trade-off in one table: abstraction is
essentially free *and* accurate for compute-bound codes, and costs a
little accuracy exactly where it also saves the least.

Run:  python examples/sample_ratio_study.py
"""

from repro.apps import build_sample, sample_inputs_for_ratio
from repro.machine import ORIGIN_2000
from repro.parallel import simulate_host_execution
from repro.workflow import ModelingWorkflow, format_table

NPROCS = 8
RATIOS = [0.0001, 0.001, 0.01, 0.1, 1.0]


def study(pattern: str) -> list[list]:
    wf = ModelingWorkflow(
        build_sample(pattern),
        ORIGIN_2000,
        calib_inputs=sample_inputs_for_ratio(0.01, ORIGIN_2000, iters=10),
        calib_nprocs=NPROCS,
    )
    wf.calibrate()
    rows = []
    for i, ratio in enumerate(RATIOS):
        inputs = sample_inputs_for_ratio(ratio, ORIGIN_2000, iters=10)
        measured = wf.run_measured(inputs, NPROCS, seed=71 + i)
        de = wf.run_de(inputs, NPROCS, collect_trace=True)
        am = wf.run_am(inputs, NPROCS, collect_trace=True)
        err = 100 * abs(am.elapsed - measured.elapsed) / measured.elapsed
        de_cost = simulate_host_execution(de.trace, NPROCS, ORIGIN_2000).wall_time
        am_cost = simulate_host_execution(am.trace, NPROCS, ORIGIN_2000).wall_time
        rows.append([ratio, measured.elapsed, am.elapsed, err, de_cost / am_cost])
    return rows


def main() -> None:
    for pattern in ("wavefront", "nearest_neighbor"):
        rows = study(pattern)
        print(
            format_table(
                ["comm:comp", "measured(s)", "AM predicted(s)", "%err", "sim speedup (DE/AM)"],
                rows,
                title=f"SAMPLE [{pattern}] on the Origin 2000, {NPROCS} processors",
            )
        )
        print()
    print(
        "Reading the table: at small comm:comp ratios (compute-bound, the\n"
        "common case) the analytical model is both most accurate and most\n"
        "profitable; as communication dominates, its advantage and accuracy\n"
        "both shrink — the paper's Figs. 8/9 in one experiment."
    )


if __name__ == "__main__":
    main()
