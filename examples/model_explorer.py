#!/usr/bin/env python
"""Exploring the modeling spectrum and archiving runs — POEMS-style.

Shows the workflow a performance analyst would actually use:

1. calibrate once, then ask *several* predictors of different cost the
   same question (how long will Sweep3D take on this machine?);
2. check measurement quality before trusting the calibration
   (per-sample w_i spread from the instrumented run);
3. archive the simulation's event trace and re-analyze it offline —
   host-runtime what-ifs without re-simulating.

Run:  python examples/model_explorer.py
"""

import tempfile
from pathlib import Path

from repro.analytic import analytic_predict, taskgraph_predict
from repro.apps import build_sweep3d, sweep3d_inputs
from repro.codegen import generate_instrumented
from repro.ir import MeasurementCollector, make_factory
from repro.machine import IBM_SP
from repro.parallel import simulate_host_execution
from repro.sim import ExecMode, Simulator, load_trace, save_trace
from repro.workflow import ModelingWorkflow, format_table

NPROCS = 16
CALIB = sweep3d_inputs(64, 64, 64, NPROCS, kb=2, ab=1, niter=1)
TARGET = sweep3d_inputs(96, 96, 96, NPROCS, kb=2, ab=1, niter=1)


def main() -> None:
    program = build_sweep3d()
    wf = ModelingWorkflow(program, IBM_SP, calib_inputs=CALIB, calib_nprocs=NPROCS)
    wf.calibrate()

    # 1. measurement quality: per-sample spread of each w_i
    collector = MeasurementCollector()
    instrumented = generate_instrumented(program)
    Simulator(
        NPROCS, make_factory(instrumented, CALIB, collector=collector), IBM_SP,
        mode=ExecMode.MEASURED,
    ).run()
    rows = []
    for task in collector.tasks():
        mean, std, n = collector.rate_stats(task)
        rows.append([task, f"{mean:.3e}", f"{100 * std / mean:.1f}%", n])
    print(format_table(
        ["task", "w (s/iter)", "sample spread", "samples"],
        rows,
        title="Calibration quality (trust the w_i before extrapolating)",
    ))

    # 2. one question, four predictors
    meas = wf.run_measured(TARGET, NPROCS).elapsed
    rows = [["measured (ground truth)", meas, "-"]]
    for label, value in [
        ("MPI-SIM-DE", wf.run_de(TARGET, NPROCS).elapsed),
        ("MPI-SIM-AM", wf.run_am(TARGET, NPROCS).elapsed),
        ("task-graph analysis", taskgraph_predict(
            wf.compiled.simplified, TARGET, NPROCS, IBM_SP, wf.wparams).elapsed),
        ("per-rank summation", analytic_predict(
            wf.compiled.simplified, TARGET, NPROCS, IBM_SP, wf.wparams).elapsed),
    ]:
        rows.append([label, value, f"{100 * abs(value - meas) / meas:.1f}%"])
    print()
    print(format_table(
        ["predictor", "predicted time (s)", "%err"],
        rows,
        title=f"Sweep3D 96^3 on {NPROCS} processors, four ways",
    ))

    # 3. archive the trace; re-analyze host-runtime offline
    am_run = wf.run_am(TARGET, NPROCS, collect_trace=True)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "sweep3d_am.trace.jsonl"
        save_trace(am_run.trace, path)
        archived = load_trace(path)
        rows = []
        for hosts in (1, 4, 16):
            est = simulate_host_execution(archived, hosts, IBM_SP)
            rows.append([hosts, est.wall_time, f"{est.efficiency:.0%}"])
        print()
        print(format_table(
            ["host procs", "simulator runtime (s)", "efficiency"],
            rows,
            title=f"Offline host-runtime analysis of the archived trace "
                  f"({len(archived)} events, {path.stat().st_size // 1024} KiB)",
        ))


if __name__ == "__main__":
    main()
