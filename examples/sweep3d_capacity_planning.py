#!/usr/bin/env python
"""Capacity planning for Sweep3D — the paper's motivating scenario.

"Sweep3D is a kernel application of the ASCI benchmark suite [...] In
its largest configuration, it requires computations on a grid with one
billion elements.  The memory requirements and execution time of such a
configuration makes it impractical to simulate" — unless the
computation is abstracted away.

This example sizes a machine for a large fixed per-processor workload:
it checks which simulator can even *run* each candidate system (memory
feasibility), then uses MPI-SIM-AM to predict execution time and
parallel efficiency as the machine grows.

Run:  python examples/sweep3d_capacity_planning.py
"""

from repro.apps import build_sweep3d, sweep3d_inputs, sweep3d_per_proc_inputs
from repro.machine import IBM_SP, GiB
from repro.parallel import estimate_program_memory
from repro.workflow import ModelingWorkflow, format_bytes, format_table

#: Host machine available for running the simulator itself.
HOST_BUDGET = 1 * GiB

#: Per-processor workload to plan for (cells per target processor).
PER_PROC = (6, 6, 1000)

CANDIDATE_SYSTEMS = [64, 256, 1024, 4096]


def main() -> None:
    program = build_sweep3d()
    workflow = ModelingWorkflow(
        program,
        IBM_SP,
        calib_inputs=sweep3d_inputs(96, 96, 1000, 16, kb=2, ab=1, niter=1),
        calib_nprocs=16,
    )
    workflow.calibrate()
    simplified = workflow.compiled.simplified

    it, jt, kt = PER_PROC
    rows = []
    for nprocs in CANDIDATE_SYSTEMS:
        inputs = sweep3d_per_proc_inputs(it, jt, kt, nprocs, kb=2, ab=1, niter=1)
        cells = it * jt * kt * nprocs
        de_mem = estimate_program_memory(program, inputs, nprocs, IBM_SP.host)
        am_mem = estimate_program_memory(simplified, inputs, nprocs, IBM_SP.host)
        de_ok = de_mem <= HOST_BUDGET
        am_ok = am_mem <= HOST_BUDGET
        predicted = workflow.run_am(inputs, nprocs).elapsed if am_ok else None
        rows.append(
            [
                nprocs,
                f"{cells / 1e6:.0f}M",
                f"{format_bytes(de_mem)} ({'ok' if de_ok else 'X'})",
                f"{format_bytes(am_mem)} ({'ok' if am_ok else 'X'})",
                predicted,
            ]
        )

    print(
        format_table(
            ["target procs", "total cells", "DE sim memory", "AM sim memory", "AM predicted time(s)"],
            rows,
            title=(
                f"Sweep3D capacity planning, {it}x{jt}x{kt} cells/proc, "
                f"{format_bytes(HOST_BUDGET)} simulation host"
            ),
        )
    )

    # weak-scaling efficiency from the predictions
    base = rows[0][4]
    print("\nweak-scaling efficiency (vs the smallest system):")
    for row in rows:
        if row[4] is not None:
            print(f"  {row[0]:>6} procs: {100 * base / row[4]:.0f}%")
    print(
        "\nWith direct execution, configurations marked (X) above could not be\n"
        "simulated at all — the compiler-synthesized model is what makes the\n"
        "large-system predictions possible (paper, Sec. 4.3)."
    )


if __name__ == "__main__":
    main()
