#!/usr/bin/env python
"""From HPF source to large-system predictions — the dhpf pipeline.

The paper's toolchain starts a step earlier than MPI: "The integrated
system can simulate unmodified High Performance Fortran (HPF) programs
compiled to the Message-Passing Interface standard (MPI) by the dhpf
compiler."  This example walks that longer pipeline:

1. write Tomcatv as a data-parallel HPF program — seven (*,BLOCK)
   arrays, FORALLs with declared stencils, a MAXVAL reduction;
2. compile it to message-passing form (owner-computes partitioning,
   ghost-column exchanges, allreduce) — ``repro.hpf.compile_hpf``;
3. hand the generated program to the standard Fig. 2 workflow:
   calibrate w_i, condense/slice/simplify, and predict configurations
   no one ever measured.

Run:  python examples/hpf_frontend.py
"""

from repro.hpf import compile_hpf, tomcatv_hpf
from repro.ir import format_program
from repro.machine import IBM_SP
from repro.stg import synthesize_stg, to_dot
from repro.workflow import ModelingWorkflow, format_table


def main() -> None:
    hpf = tomcatv_hpf()
    print(f"HPF source: {hpf.name}, arrays {sorted(hpf.arrays)} distributed (*, BLOCK)")
    for f in hpf.foralls():
        print(
            f"  FORALL {f.name}: reads {sorted(f.reads)} "
            f"(ghost width {f.ghost_width()}), writes {list(f.writes)}"
        )

    program = compile_hpf(hpf)
    print("\ngenerated message-passing program (dhpf output):")
    print(format_program(program))

    # the static task graph of the generated code (Fig. 1(b) style);
    # write it out as DOT for rendering
    stg = synthesize_stg(program)
    print(f"\nstatic task graph: {len(stg.nodes)} nodes, "
          f"{len(stg.communication_edges())} communication edge(s)")
    dot_path = "tomcatv_hpf_stg.dot"
    with open(dot_path, "w") as fh:
        fh.write(to_dot(stg))
    print(f"DOT rendering written to {dot_path}")

    # the standard workflow, fed by the front-end's output
    wf = ModelingWorkflow(
        program, IBM_SP, calib_inputs={"n": 512, "itmax": 5}, calib_nprocs=16
    )
    wf.calibrate()
    print("\ncompiler summary for the generated program:")
    print(wf.compiled.summary())

    rows = []
    for nprocs in (16, 64, 256):
        inputs = {"n": 2048, "itmax": 5}
        meas = wf.run_measured(inputs, nprocs) if nprocs <= 64 else None
        am = wf.run_am(inputs, nprocs)
        err = (
            f"{100 * abs(am.elapsed - meas.elapsed) / meas.elapsed:.1f}%" if meas else "-"
        )
        rows.append([nprocs, meas.elapsed if meas else None, am.elapsed, err])
    print()
    print(
        format_table(
            ["procs", "measured(s)", "MPI-SIM-AM(s)", "%err"],
            rows,
            title="HPF Tomcatv 2048x2048: predictions from unmodified HPF source",
        )
    )


if __name__ == "__main__":
    main()
