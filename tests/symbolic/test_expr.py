"""Unit tests for the symbolic arithmetic expression engine."""

import math

import pytest

from repro.symbolic import (
    Add,
    Const,
    Max,
    Min,
    Mul,
    UnboundVariableError,
    Var,
    as_expr,
    ceil_div,
    floor_div,
)

N = Var("N")
P = Var("P")


class TestConstruction:
    def test_as_expr_int(self):
        e = as_expr(5)
        assert isinstance(e, Const) and e.value == 5

    def test_as_expr_float(self):
        e = as_expr(2.5)
        assert isinstance(e, Const) and e.value == 2.5

    def test_as_expr_passthrough(self):
        assert as_expr(N) is N

    def test_as_expr_rejects_bool(self):
        with pytest.raises(TypeError):
            as_expr(True)

    def test_as_expr_rejects_str(self):
        with pytest.raises(TypeError):
            as_expr("N")

    def test_var_requires_name(self):
        with pytest.raises(TypeError):
            Var("")

    def test_const_rejects_non_number(self):
        with pytest.raises(TypeError):
            Const("x")

    def test_immutability(self):
        with pytest.raises(AttributeError):
            N.name = "M"
        with pytest.raises(AttributeError):
            Const(1).value = 2


class TestSimplification:
    def test_constant_folding_add(self):
        assert (as_expr(2) + 3) == Const(5)

    def test_constant_folding_mul(self):
        assert (as_expr(4) * 5) == Const(20)

    def test_add_identity(self):
        assert (N + 0) == N
        assert (0 + N) == N

    def test_mul_identity(self):
        assert (N * 1) == N
        assert (1 * N) == N

    def test_mul_zero_annihilates(self):
        assert (N * 0) == Const(0)

    def test_add_flattens(self):
        e = (N + P) + (N + 1)
        assert isinstance(e, Add)
        assert len(e.args) == 4  # N, P, N, 1

    def test_mul_flattens(self):
        e = (N * 2) * (P * 3)
        assert isinstance(e, Mul)
        # the two constants fold together
        assert e.evaluate({"N": 1, "P": 1}) == 6

    def test_div_by_one(self):
        assert (N / 1) == N
        assert (N // 1) == N
        assert ceil_div(N, 1) == N

    def test_min_dedup(self):
        assert Min.make(N, N) == N

    def test_max_constant_fold(self):
        assert Max.make(3, 7) == Const(7)

    def test_min_mixed(self):
        e = Min.make(N, 5, 3)
        assert isinstance(e, Min)
        assert e.evaluate({"N": 10}) == 3
        assert e.evaluate({"N": 1}) == 1


class TestEvaluation:
    def test_var(self):
        assert N.evaluate({"N": 42}) == 42

    def test_unbound_raises(self):
        with pytest.raises(UnboundVariableError) as ei:
            (N + P).evaluate({"N": 1})
        assert "P" in str(ei.value)

    def test_arith(self):
        e = (N - 2) * (P + 1)
        assert e.evaluate({"N": 10, "P": 3}) == 32

    def test_neg(self):
        assert (-N).evaluate({"N": 5}) == -5

    def test_rsub(self):
        assert (10 - N).evaluate({"N": 3}) == 7

    def test_floordiv(self):
        assert (N // P).evaluate({"N": 7, "P": 2}) == 3

    def test_ceildiv_exact(self):
        assert ceil_div(N, P).evaluate({"N": 6, "P": 2}) == 3

    def test_ceildiv_round_up(self):
        assert ceil_div(N, P).evaluate({"N": 7, "P": 2}) == 4

    def test_ceildiv_float(self):
        assert ceil_div(N, P).evaluate({"N": 7.0, "P": 2}) == 4

    def test_mod(self):
        assert (N % P).evaluate({"N": 7, "P": 3}) == 1

    def test_truediv(self):
        assert (N / P).evaluate({"N": 7, "P": 2}) == 3.5

    def test_floordiv_float(self):
        assert floor_div(N, as_expr(2.0)).evaluate({"N": 7}) == math.floor(3.5)

    def test_paper_shift_work_expression(self):
        # (N-2) * (min(N, myid*b + b) - max(2, myid*b + 1)) from Fig. 1(c)
        myid, b = Var("myid"), Var("b")
        work = (N - 2) * (Min.make(N, myid * b + b) - Max.make(2, myid * b + 1))
        env = {"N": 100, "b": 25, "myid": 0}
        # proc 0: min(N, 25) - max(2, 1) = 25 - 2 = 23 rows, 98 columns
        assert work.evaluate(env) == 98 * 23
        env["myid"] = 3
        # proc 3: min(N, 100) - max(2, 76) = 100 - 76 = 24 rows
        assert work.evaluate(env) == 98 * 24


class TestStructure:
    def test_equality_and_hash(self):
        a = (N + 1) * P
        b = (Var("N") + 1) * Var("P")
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        assert (N + 1) != (N + 2)
        assert N != P

    def test_free_vars(self):
        e = ceil_div(N, P) + Var("myid") % 4
        assert e.free_vars() == {"N", "P", "myid"}

    def test_const_free_vars(self):
        assert as_expr(7).free_vars() == frozenset()

    def test_is_constant(self):
        assert (as_expr(3) * 4).is_constant()
        assert not N.is_constant()

    def test_constant_value(self):
        assert (as_expr(3) * 4).constant_value() == 12

    def test_subs(self):
        e = ceil_div(N, P)
        e2 = e.subs({"P": 4})
        assert e2.free_vars() == {"N"}
        assert e2.evaluate({"N": 10}) == 3

    def test_subs_with_expr(self):
        e = N * 2
        e2 = e.subs({"N": P + 1})
        assert e2.evaluate({"P": 4}) == 10

    def test_str_roundtrip_smoke(self):
        e = (N - 2) * ceil_div(N, P) + Min.make(N, 5)
        s = str(e)
        assert "N" in s and "ceil" in s and "min" in s


class TestMinMaxBinary:
    def test_min_nested_flatten(self):
        e = Min.make(Min.make(N, P), 3)
        assert isinstance(e, Min)
        assert len(e.args) == 3

    def test_max_evaluate(self):
        assert Max.make(N, P, 0).evaluate({"N": -5, "P": -2}) == 0

    def test_empty_nary_rejected(self):
        with pytest.raises((ValueError, TypeError)):
            Add(())
