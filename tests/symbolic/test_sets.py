"""Unit tests for symbolic process sets and rank mappings."""

from repro.symbolic import (
    RANK,
    Eq,
    Ge,
    Gt,
    Mod,
    ProcessSet,
    RankMapping,
    Var,
    all_processes,
)

P = Var("P")


class TestProcessSet:
    def test_all_processes(self):
        s = all_processes()
        assert list(s.members({"P": 4})) == [0, 1, 2, 3]
        assert s.cardinality({"P": 4}) == 4

    def test_contains(self):
        s = all_processes()
        assert s.contains(0, {"P": 4})
        assert s.contains(3, {"P": 4})
        assert not s.contains(4, {"P": 4})
        assert not s.contains(-1, {"P": 4})

    def test_guarded_set(self):
        # senders in the paper's shift: {[p] : 1 <= p <= P-1}
        s = ProcessSet(1, P - 1)
        assert list(s.members({"P": 4})) == [1, 2, 3]

    def test_guard_with_mod(self):
        # even ranks only
        s = all_processes().restrict(Eq(Mod.make(RANK, 2), 0))
        assert list(s.members({"P": 6})) == [0, 2, 4]

    def test_empty_set(self):
        s = ProcessSet(1, 0)
        assert list(s.members({})) == []
        assert s.cardinality({}) == 0

    def test_free_vars_exclude_rank(self):
        s = ProcessSet(0, P - 1, Gt(RANK, Var("k")))
        assert s.free_vars() == {"P", "k"}

    def test_str(self):
        assert "p" in str(all_processes())

    def test_equality(self):
        assert all_processes() == all_processes()
        assert ProcessSet(1, P - 1) != all_processes()
        assert hash(ProcessSet(1, P - 1)) == hash(ProcessSet(1, P - 1))


class TestRankMapping:
    def test_shift_left(self):
        # Fig. 1(b): each p in [1, P-1] sends to q = p-1
        m = RankMapping(RANK - 1, Ge(RANK, 1))
        assert m.apply(3, {"P": 4}) == 2
        assert m.apply(0, {"P": 4}) is None

    def test_applies(self):
        m = RankMapping(RANK - 1, Ge(RANK, 1))
        assert m.applies(1, {}) and not m.applies(0, {})

    def test_pairs(self):
        m = RankMapping(RANK - 1, Ge(RANK, 1))
        dom = all_processes()
        assert list(m.pairs({"P": 4}, dom)) == [(1, 0), (2, 1), (3, 2)]

    def test_2d_grid_neighbor(self):
        # west neighbour on a px-wide grid: q = p-1 when (p mod px) > 0
        px = Var("px")
        m = RankMapping(RANK - 1, Gt(Mod.make(RANK, px), 0))
        env = {"px": 3}
        assert m.apply(4, env) == 3  # (1,1) -> (1,0)
        assert m.apply(3, env) is None  # (1,0) has no west neighbour

    def test_free_vars(self):
        m = RankMapping(RANK + Var("px"), Gt(RANK, 0))
        assert m.free_vars() == {"px"}

    def test_equality_hash(self):
        a = RankMapping(RANK - 1, Ge(RANK, 1))
        b = RankMapping(RANK - 1, Ge(RANK, 1))
        assert a == b and hash(a) == hash(b)

    def test_str(self):
        m = RankMapping(RANK - 1, Ge(RANK, 1))
        assert "->" in str(m)
