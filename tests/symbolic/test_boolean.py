"""Unit tests for symbolic boolean conditions."""

import pytest

from repro.symbolic import (
    FALSE,
    TRUE,
    And,
    BoolConst,
    Eq,
    Ge,
    Gt,
    Le,
    Lt,
    Ne,
    Not,
    Or,
    Var,
    as_bool_expr,
)

p = Var("p")
P = Var("P")


class TestComparison:
    @pytest.mark.parametrize(
        "ctor,op_true,op_false",
        [
            (Lt, (1, 2), (2, 2)),
            (Le, (2, 2), (3, 2)),
            (Gt, (3, 2), (2, 2)),
            (Ge, (2, 2), (1, 2)),
            (Eq, (2, 2), (1, 2)),
            (Ne, (1, 2), (2, 2)),
        ],
    )
    def test_semantics(self, ctor, op_true, op_false):
        assert ctor(p, P).evaluate({"p": op_true[0], "P": op_true[1]}) is True
        assert ctor(p, P).evaluate({"p": op_false[0], "P": op_false[1]}) is False

    def test_constant_folding(self):
        assert Lt(1, 2) == TRUE
        assert Gt(1, 2) == FALSE

    def test_free_vars(self):
        assert Lt(p, P - 1).free_vars() == {"p", "P"}

    def test_subs(self):
        c = Lt(p, P)
        assert c.subs({"P": 4}).evaluate({"p": 4}) is False
        assert c.subs({"P": 4}).evaluate({"p": 3}) is True


class TestJunctions:
    def test_and_short_circuit(self):
        assert And.make(FALSE, Lt(p, P)) == FALSE

    def test_or_short_circuit(self):
        assert Or.make(TRUE, Lt(p, P)) == TRUE

    def test_and_identity(self):
        assert And.make(TRUE, Lt(p, P)) == Lt(p, P)

    def test_or_identity(self):
        assert Or.make(FALSE, Lt(p, P)) == Lt(p, P)

    def test_empty_and_is_true(self):
        assert And.make() == TRUE

    def test_empty_or_is_false(self):
        assert Or.make() == FALSE

    def test_flattening(self):
        e = And.make(And.make(Lt(p, P), Gt(p, 0)), Ne(p, 3))
        assert isinstance(e, And)
        assert len(e.args) == 3

    def test_operator_sugar(self):
        e = Lt(p, P) & Gt(p, 0)
        assert e.evaluate({"p": 1, "P": 4}) is True
        assert e.evaluate({"p": 0, "P": 4}) is False
        e2 = Lt(p, 0) | Gt(p, 10)
        assert e2.evaluate({"p": 5}) is False
        assert e2.evaluate({"p": 11}) is True

    def test_evaluate_and(self):
        e = And.make(Lt(p, P), Gt(p, 0))
        assert e.evaluate({"p": 2, "P": 4}) is True
        assert e.evaluate({"p": 4, "P": 4}) is False


class TestNot:
    def test_double_negation(self):
        inner = And.make(Lt(p, P), Gt(p, 0))
        assert Not.make(Not.make(inner)) == inner

    def test_negates_comparison(self):
        assert Not.make(Lt(p, P)) == Ge(p, P)
        assert Not.make(Eq(p, P)) == Ne(p, P)

    def test_negates_const(self):
        assert Not.make(TRUE) == FALSE

    def test_invert_sugar(self):
        assert (~Lt(p, 3)).evaluate({"p": 3}) is True


class TestCoercion:
    def test_bool(self):
        assert as_bool_expr(True) == TRUE
        assert as_bool_expr(False) == FALSE

    def test_passthrough(self):
        c = Lt(p, P)
        assert as_bool_expr(c) is c

    def test_rejects_int(self):
        with pytest.raises(TypeError):
            as_bool_expr(1)

    def test_boolconst_str(self):
        assert str(TRUE) == "true" and str(FALSE) == "false"

    def test_hash_equality(self):
        assert hash(Lt(p, P)) == hash(Lt(Var("p"), Var("P")))
        assert BoolConst(True) == TRUE
