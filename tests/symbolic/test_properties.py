"""Property-based tests (hypothesis) for the symbolic expression engine.

The compiler's correctness rests on symbolic expressions evaluating
exactly like the concrete arithmetic they abstract; these properties pin
that down over randomly generated expression trees.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symbolic import (
    Const,
    FloorDiv,
    Max,
    Min,
    Mod,
    Var,
    ceil_div,
)

VARS = ("N", "P", "b", "myid")


@st.composite
def envs(draw):
    return {name: draw(st.integers(min_value=1, max_value=1000)) for name in VARS}


def exprs(max_leaves=6):
    leaf = st.one_of(
        st.integers(min_value=-50, max_value=50).map(Const),
        st.sampled_from(VARS).map(Var),
    )

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda ab: ab[0] + ab[1]),
            st.tuples(children, children).map(lambda ab: ab[0] - ab[1]),
            st.tuples(children, children).map(lambda ab: ab[0] * ab[1]),
            st.tuples(children, children).map(lambda ab: Min.make(ab[0], ab[1])),
            st.tuples(children, children).map(lambda ab: Max.make(ab[0], ab[1])),
        )

    return st.recursive(leaf, extend, max_leaves=max_leaves)


@given(exprs(), envs())
@settings(max_examples=200)
def test_subs_then_evaluate_equals_evaluate(e, env):
    """Substituting all variables yields a closed expr with the same value."""
    closed = e.subs(env)
    assert closed.free_vars() == frozenset()
    assert closed.constant_value() == e.evaluate(env)


@given(exprs(), exprs(), envs())
@settings(max_examples=200)
def test_add_commutes_semantically(a, b, env):
    assert (a + b).evaluate(env) == (b + a).evaluate(env)


@given(exprs(), exprs(), exprs(), envs())
@settings(max_examples=100)
def test_add_associates_semantically(a, b, c, env):
    assert ((a + b) + c).evaluate(env) == (a + (b + c)).evaluate(env)


@given(exprs(), exprs(), envs())
@settings(max_examples=200)
def test_mul_commutes_semantically(a, b, env):
    assert (a * b).evaluate(env) == (b * a).evaluate(env)


@given(exprs(), envs())
@settings(max_examples=200)
def test_structural_equality_implies_equal_hash(e, env):
    other = e.subs({})  # identity substitution rebuilds the tree
    assert other == e
    assert hash(other) == hash(e)


@given(st.integers(min_value=-10000, max_value=10000), st.integers(min_value=1, max_value=500))
def test_ceil_div_matches_math_ceil(a, b):
    assert ceil_div(Const(a), Const(b)).constant_value() == math.ceil(a / b)


@given(st.integers(min_value=-10000, max_value=10000), st.integers(min_value=1, max_value=500))
def test_floor_div_matches_python(a, b):
    assert FloorDiv.make(Const(a), Const(b)).constant_value() == a // b


@given(st.integers(min_value=-10000, max_value=10000), st.integers(min_value=1, max_value=500))
def test_mod_matches_python(a, b):
    assert Mod.make(Const(a), Const(b)).constant_value() == a % b


@given(st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=6))
def test_min_max_fold_constants(values):
    assert Min.make(*map(Const, values)).constant_value() == min(values)
    assert Max.make(*map(Const, values)).constant_value() == max(values)


@given(exprs(), envs())
@settings(max_examples=200)
def test_free_vars_sound(e, env):
    """Evaluation only needs the variables reported free."""
    needed = {k: v for k, v in env.items() if k in e.free_vars()}
    assert e.evaluate(needed) == e.evaluate(env)


@given(exprs(), envs(), st.sampled_from(VARS))
@settings(max_examples=200)
def test_partial_substitution_consistent(e, env, name):
    """Substituting one variable then evaluating the rest is consistent."""
    partial = e.subs({name: env[name]})
    assert name not in partial.free_vars()
    assert partial.evaluate(env) == e.evaluate(env)
