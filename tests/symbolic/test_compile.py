"""Tests for Expr.compile / BoolExpr.compile: the symbolic fast path.

AM-mode runs evaluate condensed scaling functions per delayed task;
``compile()`` lowers an expression tree to one Python closure.  The
contract: the closure computes *exactly* what ``evaluate`` computes —
same values, same errors — and is cached, composable, and rebuilt
transparently after pickling.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symbolic import (
    And,
    Const,
    Eq,
    FloorDiv,
    Ge,
    Lt,
    Max,
    Min,
    Mod,
    Not,
    Or,
    UnboundVariableError,
    Var,
    ceil_div,
)

VARS = ("N", "P", "b", "myid")


@st.composite
def envs(draw):
    return {name: draw(st.integers(min_value=1, max_value=1000)) for name in VARS}


def exprs(max_leaves=6):
    leaf = st.one_of(
        st.integers(min_value=-50, max_value=50).map(Const),
        st.sampled_from(VARS).map(Var),
    )

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda ab: ab[0] + ab[1]),
            st.tuples(children, children).map(lambda ab: ab[0] - ab[1]),
            st.tuples(children, children).map(lambda ab: ab[0] * ab[1]),
            st.tuples(children, children).map(lambda ab: Min.make(ab[0], ab[1])),
            st.tuples(children, children).map(lambda ab: Max.make(ab[0], ab[1])),
        )

    return st.recursive(leaf, extend, max_leaves=max_leaves)


N, P, b = Var("N"), Var("P"), Var("b")


class TestExprCompile:
    @given(exprs(), envs())
    @settings(max_examples=200)
    def test_compiled_matches_evaluate(self, e, env):
        assert e.compile()(env) == e.evaluate(env)

    def test_division_family_matches_evaluate(self):
        env = {"N": 17, "P": 5}
        for e in (N / P, FloorDiv.make(N, P), ceil_div(N, P), Mod.make(N, P)):
            assert e.compile()(env) == e.evaluate(env)

    def test_closure_is_cached(self):
        e = N * P + Const(3)
        assert e.compile() is e.compile()

    def test_missing_binding_raises_same_error(self):
        e = N * P + b
        with pytest.raises(UnboundVariableError) as via_eval:
            e.evaluate({"N": 4})
        with pytest.raises(UnboundVariableError) as via_compiled:
            e.compile()({"N": 4})
        assert str(via_compiled.value) == str(via_eval.value)

    def test_pickle_roundtrip_recompiles(self):
        e = Max.make(N, P) + ceil_div(N, Const(4))
        e.compile()  # populate the caches that must NOT be pickled
        clone = pickle.loads(pickle.dumps(e))
        assert clone == e
        env = {"N": 9, "P": 2}
        assert clone.compile()(env) == e.evaluate(env)


class TestBoolExprCompile:
    CASES = [
        Lt(N, P),
        Ge(N * Const(2), P + b),
        Eq(Mod.make(N, P), Const(0)),
        And.make(Lt(N, P), Lt(P, b)),
        And.make(Lt(N, P), Lt(P, b), Lt(b, Const(100))),
        Or.make(Ge(N, P), Ge(P, b)),
        Or.make(Ge(N, P), Ge(P, b), Eq(N, b)),
        Not.make(And.make(Lt(N, P), Ge(b, Const(3)))),
        # 4-wide junctions exercise the general all()/any() fallback
        And.make(Lt(N, Const(900)), Lt(P, Const(900)), Lt(b, Const(900)),
                 Ge(N + P, Const(2))),
        Or.make(Eq(N, Const(-1)), Eq(P, Const(-1)), Eq(b, Const(-1)),
                Ge(N, Const(1))),
    ]

    @given(envs())
    @settings(max_examples=100)
    def test_compiled_matches_evaluate(self, env):
        for c in self.CASES:
            assert c.compile()(env) == c.evaluate(env)

    def test_closure_is_cached(self):
        c = And.make(Lt(N, P), Ge(b, Const(1)))
        assert c.compile() is c.compile()

    def test_missing_binding_raises_same_error(self):
        c = And.make(Lt(N, P), Ge(b, Const(1)))
        with pytest.raises(UnboundVariableError) as via_eval:
            c.evaluate({"N": 1, "P": 2})
        with pytest.raises(UnboundVariableError) as via_compiled:
            c.compile()({"N": 1, "P": 2})
        assert str(via_compiled.value) == str(via_eval.value)

    def test_junction_shortcircuit_matches_evaluate(self):
        # `and` must not evaluate past the first false operand — the
        # unbound right-hand side is unreachable in both implementations
        c = And.make(Lt(N, Const(0)), Lt(Var("missing"), Const(1)))
        env = {"N": 5}
        assert c.evaluate(env) is False
        assert c.compile()(env) is False

    def test_pickle_roundtrip_recompiles(self):
        c = Or.make(Lt(N, P), Not.make(Eq(b, Const(7))))
        c.compile()
        clone = pickle.loads(pickle.dumps(c))
        assert clone == c
        env = {"N": 3, "P": 9, "b": 7}
        assert clone.compile()(env) == c.evaluate(env)
