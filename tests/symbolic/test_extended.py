"""Unit tests for Index / Sum / Cond symbolic nodes."""

import numpy as np
import pytest

from repro.symbolic import Cond, Gt, Index, Sum, Var

N = Var("N")
i = Var("i")


class TestIndex:
    def test_evaluate_with_array(self):
        e = Index.make("cell_size", Var("c"))
        env = {"cell_size": np.array([10, 20, 30]), "c": 1}
        assert e.evaluate(env) == 20

    def test_evaluate_with_list(self):
        e = Index.make("sizes", 2)
        assert e.evaluate({"sizes": [5, 6, 7]}) == 7

    def test_free_vars_include_base(self):
        e = Index.make("cs", Var("c") + 1)
        assert e.free_vars() == {"cs", "c"}

    def test_unbound_array(self):
        with pytest.raises(KeyError):
            Index.make("cs", 0).evaluate({})

    def test_subs_reindexes(self):
        e = Index.make("cs", Var("c"))
        e2 = e.subs({"c": 2})
        assert e2.evaluate({"cs": [1, 2, 3]}) == 3

    def test_in_arithmetic(self):
        # SP-style loop bound: work = cell_size[c] * cell_size[c]
        e = Index.make("cs", Var("c")) * Index.make("cs", Var("c"))
        assert e.evaluate({"cs": [4, 5], "c": 1}) == 25

    def test_str(self):
        assert str(Index.make("cs", Var("c"))) == "cs[c]"

    def test_equality(self):
        assert Index.make("cs", 1) == Index.make("cs", 1)
        assert Index.make("cs", 1) != Index.make("ds", 1)


class TestSum:
    def test_index_independent_collapses(self):
        e = Sum.make("i", 1, N, Var("w"))
        # closed form: max(N - 1 + 1, 0) * w
        assert e.evaluate({"N": 5, "w": 2.0}) == 10.0
        assert "sum" not in str(e)

    def test_index_dependent_iterates(self):
        e = Sum.make("i", 1, N, i)
        assert e.evaluate({"N": 4}) == 1 + 2 + 3 + 4

    def test_empty_range_zero(self):
        e = Sum.make("i", 5, N, i)
        assert e.evaluate({"N": 3}) == 0

    def test_empty_range_closed_form_clamped(self):
        e = Sum.make("i", 5, N, Var("w"))
        assert e.evaluate({"N": 3, "w": 7}) == 0

    def test_bound_var_shadowed(self):
        e = Sum.make("i", 0, 2, i * Var("k"))
        # substituting i from outside must not touch the bound variable
        e2 = e.subs({"i": 100, "k": 10})
        assert e2.evaluate({}) == (0 + 1 + 2) * 10

    def test_free_vars(self):
        e = Sum.make("i", Var("lo"), Var("hi"), i + Var("k"))
        assert e.free_vars() == {"lo", "hi", "k"}

    def test_nested_sum(self):
        inner = Sum.make("j", 1, i, Var("j"))
        e = Sum.make("i", 1, 3, inner)
        # i=1: 1; i=2: 3; i=3: 6
        assert e.evaluate({}) == 10

    def test_triangular_wavefront_cost(self):
        # pipeline fill: stage p starts after p steps
        e = Sum.make("p", 0, N - 1, N - Var("p"))
        assert e.evaluate({"N": 4}) == 4 + 3 + 2 + 1


class TestCond:
    def test_basic(self):
        e = Cond.make(Gt(Var("myid"), 0), 10, 20)
        assert e.evaluate({"myid": 1}) == 10
        assert e.evaluate({"myid": 0}) == 20

    def test_constant_condition_folds(self):
        assert Cond.make(Gt(1, 0), N, 0) == N

    def test_equal_branches_fold(self):
        assert Cond.make(Gt(Var("p"), 0), N, N) == N

    def test_subs(self):
        e = Cond.make(Gt(Var("p"), 0), Var("a"), Var("b"))
        assert e.subs({"p": 1, "a": 5, "b": 6}).constant_value() == 5

    def test_free_vars(self):
        e = Cond.make(Gt(Var("p"), 0), Var("a"), Var("b"))
        assert e.free_vars() == {"p", "a", "b"}

    def test_nested_in_arithmetic(self):
        e = 2 * Cond.make(Gt(Var("p"), 0), 3, 4)
        assert e.evaluate({"p": 1}) == 6
