"""Unit tests for MPI message matching semantics."""

from repro.mpi.matching import MatchQueues, MessageRecord, PostedRecv
from repro.sim.requests import ANY_SOURCE, ANY_TAG


def msg(seq, source=0, tag=0, send_time=0.0, ready=1.0):
    return MessageRecord(
        seq=seq, source=source, tag=tag, nbytes=8, data=None,
        eager=True, send_time=send_time, ready_time=ready,
    )


def post(seq, source=ANY_SOURCE, tag=ANY_TAG, t=0.0, rank=0):
    return PostedRecv(seq=seq, rank=rank, source=source, tag=tag, post_time=t)


class TestExactMatching:
    def test_message_then_recv(self):
        q = MatchQueues()
        assert q.add_message(msg(1, source=2, tag=5)) is None
        m = q.post_recv(post(2, source=2, tag=5))
        assert m is not None and m.seq == 1
        assert q.idle()

    def test_recv_then_message(self):
        q = MatchQueues()
        assert q.post_recv(post(1, source=2, tag=5)) is None
        r = q.add_message(msg(2, source=2, tag=5))
        assert r is not None and r.seq == 1
        assert q.idle()

    def test_wrong_tag_does_not_match(self):
        q = MatchQueues()
        q.post_recv(post(1, source=2, tag=5))
        assert q.add_message(msg(2, source=2, tag=6)) is None
        assert not q.idle()

    def test_wrong_source_does_not_match(self):
        q = MatchQueues()
        q.post_recv(post(1, source=2, tag=5))
        assert q.add_message(msg(2, source=3, tag=5)) is None


class TestOrdering:
    def test_same_source_tag_matches_in_send_order(self):
        q = MatchQueues()
        q.add_message(msg(5, source=1, tag=0))
        q.add_message(msg(2, source=1, tag=0))
        first = q.post_recv(post(10, source=1, tag=0))
        assert first.seq == 2
        second = q.post_recv(post(11, source=1, tag=0))
        assert second.seq == 5

    def test_posted_recvs_match_in_post_order(self):
        q = MatchQueues()
        q.post_recv(post(1, source=1, tag=0))
        q.post_recv(post(2, source=1, tag=0))
        r = q.add_message(msg(3, source=1, tag=0))
        assert r.seq == 1


class TestWildcards:
    def test_any_source(self):
        q = MatchQueues()
        q.add_message(msg(1, source=7, tag=3))
        m = q.post_recv(post(2, source=ANY_SOURCE, tag=3))
        assert m.source == 7

    def test_any_tag(self):
        q = MatchQueues()
        q.add_message(msg(1, source=7, tag=3))
        m = q.post_recv(post(2, source=7, tag=ANY_TAG))
        assert m.tag == 3

    def test_any_any_picks_earliest_seq(self):
        q = MatchQueues()
        q.add_message(msg(9, source=1, tag=1))
        q.add_message(msg(4, source=2, tag=2))
        m = q.post_recv(post(10))
        assert m.seq == 4

    def test_wildcard_recv_matched_by_arriving_message(self):
        q = MatchQueues()
        q.post_recv(post(1))
        r = q.add_message(msg(2, source=3, tag=9))
        assert r is not None and r.seq == 1


class TestIdle:
    def test_fresh_queue_idle(self):
        assert MatchQueues().idle()

    def test_pending_message_not_idle(self):
        q = MatchQueues()
        q.add_message(msg(1))
        assert not q.idle()

    def test_pending_recv_not_idle(self):
        q = MatchQueues()
        q.post_recv(post(1, source=0, tag=0))
        assert not q.idle()
