"""Tests for the crash-consistent atomic-write helper."""

import gzip
import os

import pytest

from repro.util.atomic_io import (
    AtomicJournal,
    atomic_append_lines,
    atomic_write,
    atomic_write_text,
)


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "out.txt"
        with atomic_write(path) as fh:
            fh.write("hello\n")
        assert path.read_text() == "hello\n"

    def test_replaces_existing(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_no_tmp_leftover_on_success(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "x")
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_exception_leaves_target_untouched(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("precious")
        with pytest.raises(RuntimeError):
            with atomic_write(path) as fh:
                fh.write("half-writ")
                raise RuntimeError("crash mid-write")
        assert path.read_text() == "precious"
        assert os.listdir(tmp_path) == ["out.txt"]  # tmp cleaned up

    def test_exception_with_no_prior_file(self, tmp_path):
        path = tmp_path / "out.txt"
        with pytest.raises(RuntimeError):
            with atomic_write(path) as fh:
                fh.write("half")
                raise RuntimeError("boom")
        assert not path.exists()
        assert os.listdir(tmp_path) == []

    def test_gz_suffix_compresses(self, tmp_path):
        path = tmp_path / "out.jsonl.gz"
        with atomic_write(path) as fh:
            fh.write("line\n")
        with gzip.open(path, "rt") as fh:
            assert fh.read() == "line\n"

    def test_custom_opener(self, tmp_path):
        path = tmp_path / "custom.gz"
        with atomic_write(path, opener=lambda p: gzip.open(p, "wt")) as fh:
            fh.write("via opener")
        with gzip.open(path, "rt") as fh:
            assert fh.read() == "via opener"


class TestAtomicAppend:
    def test_append_to_missing_file(self, tmp_path):
        path = tmp_path / "log.jsonl"
        atomic_append_lines(path, ["a", "b"])
        assert path.read_text() == "a\nb\n"

    def test_append_preserves_existing(self, tmp_path):
        path = tmp_path / "log.jsonl"
        atomic_append_lines(path, ["a"])
        atomic_append_lines(path, ["b", "c"])
        assert path.read_text() == "a\nb\nc\n"

    def test_interrupted_append_keeps_old_content(self, tmp_path, monkeypatch):
        path = tmp_path / "log.jsonl"
        atomic_append_lines(path, ["a"])
        monkeypatch.setattr(os, "replace", _raise_oserror)
        with pytest.raises(OSError):
            atomic_append_lines(path, ["b"])
        monkeypatch.undo()
        assert path.read_text() == "a\n"  # previous complete file survives


def _raise_oserror(*a, **k):
    raise OSError("simulated crash at rename")


class TestAtomicJournal:
    def test_append_and_reload(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = AtomicJournal(path)
        j.append({"type": "campaign", "n": 1})
        j.append({"type": "run", "id": "abc"})
        reloaded = AtomicJournal(path)
        assert len(reloaded) == 2
        assert reloaded.records()[1]["id"] == "abc"

    def test_every_append_is_durable_on_disk(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = AtomicJournal(path)
        for i in range(3):
            j.append({"i": i})
            on_disk = [r["i"] for r in AtomicJournal(path).records()]
            assert on_disk == list(range(i + 1))

    def test_corrupt_record_reports_line(self, tmp_path):
        # mid-journal corruption (a valid record follows it) is never a
        # torn append, so loading keeps it and records() reports the line
        path = tmp_path / "j.jsonl"
        AtomicJournal(path).append({"ok": True})
        path.write_text('{not json\n' + path.read_text())
        with pytest.raises(ValueError, match=r"j\.jsonl:1: corrupt"):
            AtomicJournal(path).records()

    def test_torn_final_line_dropped_at_load(self, tmp_path):
        # the one recoverable corruption: an incomplete final line is
        # dropped with a warning, and a later append never re-persists it
        path = tmp_path / "j.jsonl"
        journal = AtomicJournal(path)
        journal.append({"seq": 1})
        journal.append({"seq": 2})
        path.write_text(path.read_text() + '{"seq": 3, "torn')
        reloaded = AtomicJournal(path)
        assert reloaded.records() == [{"seq": 1}, {"seq": 2}]
        reloaded.append({"seq": 4})
        final = AtomicJournal(path).records()
        assert final == [{"seq": 1}, {"seq": 2}, {"seq": 4}]
        assert "torn" not in path.read_text()

    def test_non_object_record_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text("[1,2,3]\n")
        with pytest.raises(ValueError, match="not a JSON object"):
            AtomicJournal(path).records()
