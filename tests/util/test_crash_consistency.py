"""Crash-consistency fault injection around :mod:`repro.util.atomic_io`.

Every durable artifact (journals, checkpoints, results.csv) funnels
through ``atomic_write``'s tmp + fsync + rename protocol.  These tests
inject EIO / ENOSPC / torn-write failures at each boundary of that
protocol and assert the crash-consistency invariant at every one:
readers observe either the old complete file or the new complete file
— never a torn intermediate — and no temporary litter survives.
"""

import errno
import json
import os

import pytest

from repro.sim.checkpoint import CheckpointWriter, load_checkpoint
from repro.util.atomic_io import AtomicJournal, atomic_write, read_jsonl


def injected(errno_code, message):
    def boom(*args, **kwargs):
        raise OSError(errno_code, message)

    return boom


def assert_clean(tmp_path, path, content):
    """The invariant: old content intact, no temporary files left over."""
    if content is None:
        assert not path.exists()
    else:
        assert path.read_text() == content
    assert not list(tmp_path.glob("*.tmp.*")), "temporary litter survived"


class FailingWrites:
    """File-like wrapper whose Nth write raises (opener injection)."""

    def __init__(self, fh, fail_at=1, errno_code=errno.ENOSPC):
        self._fh = fh
        self._writes = 0
        self._fail_at = fail_at
        self._errno = errno_code

    def write(self, data):
        self._writes += 1
        if self._writes == self._fail_at:
            raise OSError(self._errno, "no space left on device")
        return self._fh.write(data)

    def __getattr__(self, name):
        return getattr(self._fh, name)


class TestAtomicWriteBoundaries:
    def test_enospc_during_content_write(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text("old")
        with pytest.raises(OSError, match="no space"):
            with atomic_write(
                path, opener=lambda p: FailingWrites(open(p, "w"))
            ) as fh:
                fh.write("new content that never lands")
        assert_clean(tmp_path, path, "old")

    def test_eio_during_tmp_fsync(self, tmp_path, monkeypatch):
        path = tmp_path / "f.txt"
        path.write_text("old")
        monkeypatch.setattr(os, "fsync", injected(errno.EIO, "I/O error"))
        with pytest.raises(OSError, match="I/O error"):
            with atomic_write(path) as fh:
                fh.write("new")
        assert_clean(tmp_path, path, "old")

    def test_eio_during_rename(self, tmp_path, monkeypatch):
        path = tmp_path / "f.txt"
        path.write_text("old")
        monkeypatch.setattr(os, "replace", injected(errno.EIO, "I/O error"))
        with pytest.raises(OSError, match="I/O error"):
            with atomic_write(path) as fh:
                fh.write("new")
        assert_clean(tmp_path, path, "old")

    def test_failure_before_first_version_leaves_no_file(self, tmp_path,
                                                         monkeypatch):
        path = tmp_path / "fresh.txt"
        monkeypatch.setattr(os, "replace", injected(errno.ENOSPC, "full"))
        with pytest.raises(OSError):
            with atomic_write(path) as fh:
                fh.write("never lands")
        assert_clean(tmp_path, path, None)

    def test_directory_fsync_failure_is_tolerated(self, tmp_path, monkeypatch):
        """The dir fsync is durability best-effort: its failure must not
        fail a write whose rename already landed."""
        path = tmp_path / "f.txt"
        path.write_text("old")
        real_fsync = os.fsync
        calls = {"n": 0}

        def fail_second(fd):
            calls["n"] += 1
            if calls["n"] == 2:  # first: tmp file; second: parent dir
                raise OSError(errno.EIO, "I/O error")
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", fail_second)
        with atomic_write(path) as fh:
            fh.write("new")
        assert calls["n"] >= 2
        assert_clean(tmp_path, path, "new")


class TestJournalCrashConsistency:
    def test_failed_append_preserves_the_committed_prefix(self, tmp_path,
                                                          monkeypatch):
        jpath = tmp_path / "j.jsonl"
        journal = AtomicJournal(jpath)
        journal.append({"n": 1})
        journal.append({"n": 2})
        before = jpath.read_text()
        monkeypatch.setattr(os, "replace", injected(errno.ENOSPC, "full"))
        with pytest.raises(OSError):
            journal.append({"n": 3})
        monkeypatch.undo()
        assert jpath.read_text() == before
        # a fresh reader sees exactly the committed records and can go on
        reloaded = AtomicJournal(jpath)
        assert reloaded.records() == [{"n": 1}, {"n": 2}]
        reloaded.append({"n": 3})
        assert reloaded.records() == [{"n": 1}, {"n": 2}, {"n": 3}]

    def test_torn_final_line_is_dropped_on_reload(self, tmp_path):
        jpath = tmp_path / "j.jsonl"
        journal = AtomicJournal(jpath)
        journal.append({"n": 1})
        with open(jpath, "a") as fh:
            fh.write('{"n": 2, "torn')  # foreign torn O_APPEND write
        reloaded = AtomicJournal(jpath)
        assert reloaded.records() == [{"n": 1}]
        reloaded.append({"n": 2})
        assert reloaded.records() == [{"n": 1}, {"n": 2}]

    def test_corrupt_middle_fails_with_located_one_liner(self, tmp_path):
        jpath = tmp_path / "j.jsonl"
        jpath.write_text('{"n": 1}\n{torn middle\n{"n": 3}\n')
        with pytest.raises(ValueError, match=r"j\.jsonl:2"):
            read_jsonl(jpath)


class TestCheckpointCrashConsistency:
    def make_writer(self, path):
        w = CheckpointWriter()
        w.configure(path, run_id="r-1", config_hash="h-1", seed=0,
                    interval_events=1, min_interval_s=0.0)
        w.enable()
        return w

    def test_failed_write_preserves_previous_cursor(self, tmp_path,
                                                    monkeypatch):
        path = tmp_path / "c.json"
        w = self.make_writer(path)
        w.write(10, 1.0)
        monkeypatch.setattr(os, "replace", injected(errno.ENOSPC, "full"))
        with pytest.raises(OSError):
            w.write(20, 2.0)
        monkeypatch.undo()
        ckpt = load_checkpoint(path)
        assert ckpt.events == 10 and ckpt.virtual_time == 1.0
        assert not list(tmp_path.glob("*.tmp.*"))

    def test_tick_survives_a_dying_disk(self, tmp_path, monkeypatch):
        """A checkpoint is an optimization: losing the disk mid-run
        disables checkpointing instead of killing a healthy simulation."""
        path = tmp_path / "c.json"
        w = self.make_writer(path)
        monkeypatch.setattr(os, "replace", injected(errno.ENOSPC, "full"))
        w.tick(1, 0.1)  # must not raise into the event loop
        assert not w.enabled
        assert w.written == 0

    def test_half_written_checkpoint_is_unreadable_not_fatal(self, tmp_path):
        path = tmp_path / "c.json"
        w = self.make_writer(path)
        ckpt = w.write(10, 1.0)
        torn = json.dumps(ckpt.to_json())[: 20]
        path.write_text(torn)  # simulate a non-atomic writer's crash
        assert load_checkpoint(path) is None  # resume restarts from zero
