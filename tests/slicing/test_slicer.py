"""Unit tests for program slicing."""

from repro.ir import ProgramBuilder, myid, P
from repro.slicing import backward_slice, compute_criterion, slice_program
from repro.stg import condense
from repro.symbolic import Gt, Index, Var, ceil_div

N = Var("N")


def sliceable_program():
    """b feeds comm; c is dead scalar code; big compute is abstracted."""
    b = ProgramBuilder("sl", params=("N",))
    b.array("D", size=N)
    b.assign("b", ceil_div(N, P))
    b.assign("c", Var("b") * 7)  # dead: nothing structural reads c
    with b.if_(Gt(myid, 0)):
        b.send(dest=myid - 1, nbytes=Var("b") * 8, array="D")
    with b.if_(Gt(P - 1, myid)):
        b.recv(source=myid + 1, nbytes=Var("b") * 8, array="D")
    b.compute("work", work=N * Var("b"), arrays=("D",))
    return b.build()


class TestCriterion:
    def test_includes_comm_and_scaling_vars(self):
        prog = sliceable_program()
        plan = condense(prog)
        crit = compute_criterion(prog, plan)
        assert "b" in crit and "N" in crit

    def test_excludes_builtins_and_wparams(self):
        prog = sliceable_program()
        crit = compute_criterion(prog, condense(prog))
        assert "myid" not in crit and "P" not in crit
        assert not any(v.startswith("w_") for v in crit)

    def test_payload_array_not_criterion(self):
        """Buffer contents don't affect timing; D must not be criterion."""
        prog = sliceable_program()
        crit = compute_criterion(prog, condense(prog))
        assert "D" not in crit


class TestBackwardSlice:
    def test_producer_retained(self):
        prog = sliceable_program()
        needed, retained = backward_slice(prog, frozenset({"b"}))
        b_assign = prog.body[0]
        assert b_assign.sid in retained
        assert "N" in needed

    def test_dead_code_dropped(self):
        prog = sliceable_program()
        sl = slice_program(prog, condense(prog))
        c_assign = prog.body[1]
        assert c_assign.sid not in sl.retained_sids

    def test_transitive_chain(self):
        b = ProgramBuilder("chain", params=("N",))
        b.assign("a", N + 1)
        b.assign("bb", Var("a") * 2)
        b.assign("cc", Var("bb") + 3)
        b.send(dest=(myid + 1) % P, nbytes=Var("cc"))
        b.recv(source=(myid - 1 + P) % P, nbytes=Var("cc"))
        prog = b.build()
        sl = slice_program(prog, condense(prog))
        assert all(s.sid in sl.retained_sids for s in prog.body[:3])

    def test_array_in_scaling_function_retained(self):
        """NAS-SP pattern: cell_size array feeds loop bounds; its producer
        (an ArrayAssign) must be sliced in and the array kept."""

        def kern(env, arrays):
            arrays["cs"][:] = env["N"] // env["P"]

        b = ProgramBuilder("sp_like", params=("N",))
        b.array("cs", size=4, materialize=True)
        b.array("U", size=N * N)
        b.array_assign("cs", kern, reads={"N"})
        b.compute("solve", work=Index.make("cs", 0) * N, arrays=("U",))
        b.send(dest=(myid + 1) % P, nbytes=8)
        b.recv(source=(myid - 1 + P) % P, nbytes=8)
        prog = b.build()
        sl = slice_program(prog, condense(prog))
        aa = prog.body[0]
        assert aa.sid in sl.retained_sids
        assert "cs" in sl.needed

    def test_fixpoint_through_loop(self):
        """A value updated each iteration and used by comm must retain the
        in-loop producer."""
        b = ProgramBuilder("lp", params=("K",))
        b.assign("sz", 8)
        with b.loop("i", 1, Var("K")):
            b.assign("sz", Var("sz") + 8)
            b.send(dest=(myid + 1) % P, nbytes=Var("sz"))
            b.recv(source=(myid - 1 + P) % P, nbytes=Var("sz"))
        prog = b.build()
        sl = slice_program(prog, condense(prog))
        loop = prog.body[1]
        inner_assign = loop.body[0]
        assert inner_assign.sid in sl.retained_sids


class TestControlDependence:
    def test_guard_vars_pulled_into_criterion(self):
        """An assign kept inside a condensed region's if pulls the guard
        variable into the slice."""
        b = ProgramBuilder("cd", params=("N",))
        b.assign("g", N % 2)
        with b.if_(Gt(Var("g"), 0)):
            b.assign("sz", N * 8)
        with b.else_():
            b.assign("sz", N * 4)
        b.compute("filler", work=N)
        b.send(dest=(myid + 1) % P, nbytes=Var("sz"))
        b.recv(source=(myid - 1 + P) % P, nbytes=Var("sz"))
        prog = b.build()
        sl = slice_program(prog, condense(prog))
        assert "g" in sl.criterion or "g" in sl.needed
        g_assign = prog.body[0]
        assert g_assign.sid in sl.retained_sids


class TestPinning:
    def test_kernel_output_pins_block(self):
        def kern(env, arrays):
            env["nmsg"] = 4

        b = ProgramBuilder("pin", params=("N",))
        b.compute("decide", work=N, writes={"nmsg"}, kernel=kern)
        b.send(dest=(myid + 1) % P, nbytes=Var("nmsg") * 8)
        b.recv(source=(myid - 1 + P) % P, nbytes=Var("nmsg") * 8)
        prog = b.build()
        sl = slice_program(prog, condense(prog))
        assert prog.comp_blocks()[0].sid in sl.pinned_blocks

    def test_unneeded_kernel_output_not_pinned(self):
        def kern(env, arrays):
            env["junk"] = 1

        b = ProgramBuilder("nopin", params=("N",))
        b.compute("noise", work=N, writes={"junk"}, kernel=kern)
        b.send(dest=(myid + 1) % P, nbytes=8)
        b.recv(source=(myid - 1 + P) % P, nbytes=8)
        prog = b.build()
        sl = slice_program(prog, condense(prog))
        assert sl.pinned_blocks == frozenset()
