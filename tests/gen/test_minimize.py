"""Unit tests for the delta-debugging auto-minimizer."""

import pytest

from repro.gen.generator import generate_program
from repro.gen.minimize import minimize_program
from repro.ir.nodes import For, SendStmt, walk
from repro.symbolic import Const


def n_stmts(program):
    return sum(1 for _ in walk(program.body))


def has_comm(program):
    return any(s.is_comm() for s in walk(program.body))


class TestMinimize:
    def test_injected_divergence_reduced_to_quarter(self):
        """The ISSUE acceptance bar: a divergence whose repro only needs
        one communication statement shrinks to <= 25% of the original."""
        # Pick a seed with a healthy statement count so the floor of the
        # reduction (a couple of statements) is well under 25%.
        gp = next(
            generate_program(s) for s in range(60) if generate_program(s).n_stmts >= 25
        )
        result = minimize_program(gp.program, has_comm)
        assert result.final_stmts <= max(1, result.original_stmts // 4), (
            f"{result.original_stmts} -> {result.final_stmts}"
        )
        assert has_comm(result.program)
        result.program.validate()

    def test_reduction_is_deterministic(self):
        gp = generate_program(5)
        a = minimize_program(gp.program, has_comm)
        b = minimize_program(gp.program, has_comm)
        from repro.gen.corpus import program_to_json

        assert program_to_json(a.program) == program_to_json(b.program)

    def test_loop_trips_shrink(self):
        gp = next(
            gp
            for gp in (generate_program(s) for s in range(40))
            if any(
                isinstance(s, For)
                and isinstance(s.lo, Const)
                and isinstance(s.hi, Const)
                and s.hi.value - s.lo.value >= 2
                for s in walk(gp.program.body)
            )
        )

        def loopy(program):  # keep at least one loop alive
            return any(isinstance(s, For) for s in walk(program.body))

        result = minimize_program(gp.program, loopy)
        loops = [s for s in walk(result.program.body) if isinstance(s, For)]
        assert loops
        for loop in loops:
            if isinstance(loop.lo, Const) and isinstance(loop.hi, Const):
                assert loop.hi.value == loop.lo.value  # collapsed to one trip

    def test_message_sizes_shrink(self):
        gp = next(
            gp
            for gp in (generate_program(s) for s in range(40))
            if any(
                isinstance(s, SendStmt)
                and isinstance(s.nbytes, Const)
                and s.nbytes.value > 1024
                for s in walk(gp.program.body)
            )
        )
        result = minimize_program(gp.program, has_comm)
        for s in walk(result.program.body):
            if isinstance(s, SendStmt) and isinstance(s.nbytes, Const):
                assert s.nbytes.value <= 1024

    def test_non_reproducing_input_rejected(self):
        gp = generate_program(0)
        with pytest.raises(ValueError, match="does not reproduce"):
            minimize_program(gp.program, lambda p: False)

    def test_check_budget_respected(self):
        gp = generate_program(7)
        result = minimize_program(gp.program, has_comm, max_checks=5)
        assert result.checks <= 5

    def test_crashing_predicate_is_rejection_not_error(self):
        gp = generate_program(3)
        calls = {"n": 0}

        def fragile(program):
            calls["n"] += 1
            if calls["n"] == 1:
                return True  # the up-front repro check
            raise RuntimeError("predicate blew up")

        result = minimize_program(gp.program, fragile, max_checks=10)
        # Nothing shrank (every candidate "failed"), but no exception escaped.
        assert result.final_stmts == result.original_stmts
