"""Unit tests for corpus (de)serialization and the regression-case format."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gen.corpus import (
    CorpusError,
    RegressionCase,
    discover_corpus,
    load_case,
    program_from_json,
    program_to_json,
    save_case,
)
from repro.gen.generator import generate_faulty_program, generate_program
from repro.ir.builder import ProgramBuilder
from repro.symbolic import Const


class TestProgramRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_generator_output_round_trips(self, seed):
        """Property: any generated program survives print -> parse intact."""
        program = generate_program(seed).program
        blob = program_to_json(program)
        again = program_to_json(program_from_json(blob))
        assert blob == again

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_faulty_output_round_trips(self, seed):
        program = generate_faulty_program(seed).program
        blob = program_to_json(program)
        assert program_to_json(program_from_json(blob)) == blob

    def test_parsed_program_validates(self):
        program = generate_program(9).program
        program_from_json(program_to_json(program)).validate()

    def test_python_kernel_rejected(self):
        b = ProgramBuilder("k")
        b.compute("custom", work=Const(10), kernel=lambda env: None)
        with pytest.raises(CorpusError, match="kernel"):
            program_to_json(b.build())

    def test_garbage_rejected(self):
        with pytest.raises(CorpusError):
            program_from_json({"name": "x"})  # no body


class TestCaseFiles:
    def _case(self):
        return RegressionCase(
            name="tiny",
            program=generate_program(3).program,
            expect="ok",
            nprocs=4,
            seed=3,
            pattern="random_mix",
            reason="unit-test fixture",
        )

    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "tiny.json"
        save_case(self._case(), path)
        loaded = load_case(path)
        assert loaded.name == "tiny"
        assert loaded.expect == "ok"
        assert loaded.nprocs == 4
        assert program_to_json(loaded.program) == program_to_json(self._case().program)

    def test_save_is_deterministic(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        save_case(self._case(), a)
        save_case(self._case(), b)
        assert a.read_bytes() == b.read_bytes()

    def test_load_missing_file_one_line(self, tmp_path):
        with pytest.raises(CorpusError, match="cannot read"):
            load_case(tmp_path / "absent.json")

    def test_load_corrupt_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{oops")
        with pytest.raises(CorpusError, match="bad.json"):
            load_case(path)

    def test_load_bad_expect(self, tmp_path):
        path = tmp_path / "weird.json"
        save_case(self._case(), path)
        data = json.loads(path.read_text())
        data["expect"] = "explosion"
        path.write_text(json.dumps(data))
        with pytest.raises(CorpusError, match="expect"):
            load_case(path)

    def test_load_bad_nprocs(self, tmp_path):
        path = tmp_path / "weird.json"
        save_case(self._case(), path)
        data = json.loads(path.read_text())
        data["nprocs"] = 0
        path.write_text(json.dumps(data))
        with pytest.raises(CorpusError, match="nprocs"):
            load_case(path)

    def test_discover_sorted_and_strict(self, tmp_path):
        for name in ("b_case", "a_case"):
            case = RegressionCase(name=name, program=generate_program(1).program)
            save_case(case, tmp_path / f"{name}.json")
        cases = discover_corpus(tmp_path)
        assert [c.name for c in cases] == ["a_case", "b_case"]
        (tmp_path / "zz_bad.json").write_text("[]")
        with pytest.raises(CorpusError):
            discover_corpus(tmp_path)
