"""Replay the committed regression corpus through the differential harness.

Auto-discovery: every ``*.json`` under ``src/repro/apps/regressions/``
becomes one test case here — committing a minimized fuzz finding is all
it takes to pin it forever.
"""

import dataclasses

import pytest

from repro.apps.regressions import corpus_dir, load_all
from repro.gen.generator import GeneratedProgram
from repro.gen.harness import DiffConfig, classify_faulty, run_case

CASES = load_all()


def test_corpus_is_not_empty():
    assert len(CASES) >= 2, f"expected committed cases in {corpus_dir()}"


def test_required_seed_cases_present():
    names = {c.name for c in CASES}
    assert "wildcard_recv_order" in names
    assert "collective_in_branch" in names


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
def test_regression_case_replays(case):
    cfg = DiffConfig(nprocs=case.nprocs, calib_nprocs=case.nprocs)
    if case.expect == "ok":
        verdict = run_case(
            case.program, case.inputs, cfg, seed=case.seed, pattern=case.pattern
        )
    else:
        scenario = GeneratedProgram(
            seed=case.seed,
            pattern=case.pattern or "regression",
            program=case.program,
            inputs=dict(case.inputs),
            faulty=None,
            expect=case.expect,
        )
        verdict = classify_faulty(scenario, cfg)
    assert verdict.ok, f"{case.name}: {verdict.failure}: {verdict.detail}"


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
def test_regression_case_documented(case):
    """Every committed case must say why it exists."""
    assert case.reason, f"{case.name} has an empty reason field"
    assert dataclasses.is_dataclass(case)
