"""Unit tests for the fuzzing grammar configuration."""

import json

import pytest

from repro.gen.grammar import DEFAULT_PATTERN_WEIGHTS, GrammarConfig, GrammarError


class TestValidation:
    def test_defaults_valid(self):
        g = GrammarConfig()
        assert g.max_stmts >= 4
        assert set(g.pattern_weights) == set(DEFAULT_PATTERN_WEIGHTS)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_stmts": 0},
            {"max_stmts": 3},
            {"max_depth": 0},
            {"max_trip": -1},
            {"msg_min": 0},
            {"msg_min": 100, "msg_max": 50},
            {"grain_min": 100, "grain_max": 50},
            {"p_branch": 1.5},
            {"p_wildcard": -0.1},
            {"p_faulty": "lots"},
            {"pattern_weights": {}},
            {"pattern_weights": {"torus": 1.0}},
            {"pattern_weights": {"wavefront": -2.0}},
            {"pattern_weights": {"wavefront": 0.0}},
        ],
    )
    def test_bad_configs_rejected(self, kwargs):
        with pytest.raises(GrammarError):
            GrammarConfig(**kwargs)

    def test_bool_is_not_an_int(self):
        with pytest.raises(GrammarError):
            GrammarConfig(max_trip=True)

    def test_with_revalidates(self):
        g = GrammarConfig()
        with pytest.raises(GrammarError):
            g.with_(msg_max=g.msg_min - 1)


class TestSerialization:
    def test_round_trip(self):
        g = GrammarConfig(max_stmts=12, p_wildcard=0.5)
        assert GrammarConfig.from_dict(g.to_dict()) == g

    def test_unknown_key_rejected(self):
        with pytest.raises(GrammarError, match="unknown grammar key"):
            GrammarConfig.from_dict({"max_stmts": 10, "max_stmt": 10})

    def test_non_object_rejected(self):
        with pytest.raises(GrammarError, match="JSON object"):
            GrammarConfig.from_dict([1, 2, 3])

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(GrammarError, match="cannot read grammar file"):
            GrammarConfig.load(str(tmp_path / "nope.json"))

    def test_load_bad_json(self, tmp_path):
        path = tmp_path / "g.json"
        path.write_text("{not json")
        with pytest.raises(GrammarError, match="not valid JSON"):
            GrammarConfig.load(str(path))

    def test_load_good_file(self, tmp_path):
        path = tmp_path / "g.json"
        path.write_text(json.dumps({"max_stmts": 16, "p_faulty": 0.0}))
        g = GrammarConfig.load(str(path))
        assert g.max_stmts == 16
        assert g.p_faulty == 0.0
