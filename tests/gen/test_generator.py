"""Unit tests for the seeded scenario generator."""

import pytest

from repro.gen.corpus import program_to_json
from repro.gen.generator import (
    FAULT_KINDS,
    PATTERNS,
    generate_faulty_program,
    generate_program,
)
from repro.gen.grammar import GrammarConfig
from repro.ir.nodes import (
    CollectiveStmt,
    IrecvStmt,
    IsendStmt,
    RecvStmt,
    SendStmt,
    walk,
)
from repro.symbolic import Const

SEEDS = range(25)


class TestDeterminism:
    def test_same_seed_same_program(self):
        g = GrammarConfig()
        for seed in SEEDS:
            a = generate_program(seed, g)
            b = generate_program(seed, g)
            assert program_to_json(a.program) == program_to_json(b.program), seed
            assert a.pattern == b.pattern

    def test_different_seeds_differ_somewhere(self):
        g = GrammarConfig()
        blobs = {
            str(program_to_json(generate_program(seed, g).program)) for seed in SEEDS
        }
        assert len(blobs) > 1

    def test_faulty_same_seed_same_program(self):
        for kind in FAULT_KINDS:
            a = generate_faulty_program(3, kind=kind)
            b = generate_faulty_program(3, kind=kind)
            assert program_to_json(a.program) == program_to_json(b.program)


class TestValidity:
    def test_generated_programs_validate(self):
        g = GrammarConfig()
        for seed in SEEDS:
            gp = generate_program(seed, g)
            gp.program.validate()  # raises on scope violations
            assert gp.expect == "ok"
            assert gp.pattern in PATTERNS

    def test_statement_budget_respected(self):
        g = GrammarConfig(max_stmts=20)
        for seed in SEEDS:
            gp = generate_program(seed, g)
            # The budget is a soft cap: one idiom may overshoot by its
            # own (bounded) size, never by more than the largest idiom.
            assert gp.n_stmts <= g.max_stmts + 10, f"seed {seed}: {gp.n_stmts}"

    def test_pattern_forcing(self):
        for pattern in PATTERNS:
            gp = generate_program(11, pattern=pattern)
            assert gp.pattern == pattern

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError):
            generate_program(0, pattern="hypertorus")


class TestFeatureCoverage:
    """Across a modest seed sweep every grammar feature must appear."""

    def _stmts(self, n=40, **grammar_kwargs):
        g = GrammarConfig(**grammar_kwargs)
        for seed in range(n):
            yield from walk(generate_program(seed, g).program.body)

    def test_collectives_generated(self):
        assert any(isinstance(s, CollectiveStmt) for s in self._stmts())

    def test_nonblocking_generated(self):
        kinds = {type(s) for s in self._stmts(p_nonblocking=1.0)}
        assert IsendStmt in kinds and IrecvStmt in kinds

    def test_blocking_generated(self):
        kinds = {type(s) for s in self._stmts()}
        assert SendStmt in kinds and RecvStmt in kinds

    def test_wildcard_receives_generated(self):
        wildcards = [
            s
            for s in self._stmts(p_wildcard=1.0)
            if isinstance(s, RecvStmt)
            and isinstance(s.source, Const)
            and s.source.value == -1
        ]
        assert wildcards

    def test_no_wildcards_when_disabled(self):
        wildcards = [
            s
            for s in self._stmts(p_wildcard=0.0)
            if isinstance(s, RecvStmt)
            and isinstance(s.source, Const)
            and s.source.value == -1
        ]
        assert not wildcards


class TestFaulty:
    def test_kinds_and_expectations(self):
        for kind, expect in FAULT_KINDS.items():
            gp = generate_faulty_program(1, kind=kind)
            assert gp.faulty == kind
            assert gp.expect == expect
            gp.program.validate()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            generate_faulty_program(0, kind="heisenbug")

    def test_default_kind_drawn_from_seed(self):
        kinds = {generate_faulty_program(seed).faulty for seed in range(20)}
        assert kinds == set(FAULT_KINDS)
