"""Unit tests for the differential harness and faulty-program classification.

The deadlock-classification tests rely on the suite-wide per-test
timeout (tests/conftest.py) as their hang guard: a kernel that loses
its deadlock detection would hit that timeout, not wedge CI.
"""

import pytest

from repro.gen.generator import (
    FAULT_KINDS,
    generate_faulty_program,
    generate_program,
)
from repro.gen.harness import DiffConfig, check_program, classify_faulty, run_case
from repro.ir.builder import ProgramBuilder
from repro.symbolic import Const, Eq, Var

CFG = DiffConfig()


class TestDiffConfig:
    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            DiffConfig(nprocs=0)
        with pytest.raises(ValueError):
            DiffConfig(tolerance_pct=-1.0)


class TestValidPrograms:
    def test_generated_programs_pass(self):
        for seed in range(15):
            verdict = check_program(generate_program(seed), CFG)
            assert verdict.ok, f"seed {seed}: {verdict.failure}: {verdict.detail}"
            assert verdict.err_de is not None and verdict.err_de >= 0.0
            assert verdict.err_am is not None and verdict.err_am >= 0.0

    def test_error_structure_enforced(self):
        """An impossible tolerance turns noise inversions into failures."""
        strict = DiffConfig(tolerance_pct=0.0, check_replay=False)
        verdicts = [
            run_case(gp.program, gp.inputs, strict, seed=gp.seed, pattern=gp.pattern)
            for gp in (generate_program(s) for s in range(30))
        ]
        inverted = [v for v in verdicts if v.failure == "error_structure"]
        # Noise makes AM beat DE on some samples; with zero slack the
        # harness must flag at least one of them in a 30-seed sweep.
        assert inverted, "expected at least one noise-driven inversion"

    def test_verdict_record_is_json_safe(self):
        import json

        verdict = check_program(generate_program(0), CFG)
        json.dumps(verdict.to_record())

    def test_deadlocking_program_flagged_not_raised(self):
        b = ProgramBuilder("orphan_recv")
        b.array("buf", size=64, itemsize=8)
        with b.if_(Eq(Var("myid"), Const(0))):
            b.recv(source=Const(1), nbytes=Const(64), tag=1, array="buf")
        verdict = run_case(b.build(), {}, DiffConfig(check_replay=False))
        assert not verdict.ok
        assert verdict.failure == "deadlock"


class TestFaultyClassification:
    @pytest.mark.parametrize("kind", sorted(FAULT_KINDS))
    def test_each_kind_classified(self, kind):
        for seed in range(4):
            gp = generate_faulty_program(seed, kind=kind)
            verdict = classify_faulty(gp, CFG)
            assert verdict.ok, f"{kind} seed {seed}: {verdict.failure}: {verdict.detail}"

    def test_check_program_dispatches_faulty(self):
        gp = generate_faulty_program(2, kind="circular_wait")
        assert gp.expect == "deadlock"
        verdict = check_program(gp, CFG)
        assert verdict.ok

    def test_valid_program_misclassified_as_faulty(self):
        """A healthy program wearing a 'deadlock' expectation must fail."""
        import dataclasses

        gp = generate_program(4)
        dishonest = dataclasses.replace(gp, expect="deadlock", faulty="circular_wait")
        verdict = classify_faulty(dishonest, CFG)
        assert not verdict.ok
        assert verdict.failure == "misclassified"
