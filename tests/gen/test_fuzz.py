"""Unit tests for the resumable fuzz campaign driver."""

import json

import pytest

from repro.gen.fuzz import FuzzConfig, FuzzError, FuzzRunner
from repro.gen.grammar import GrammarConfig
from repro.gen.harness import DiffConfig

# A small but representative campaign: a few valid seeds, at least one
# faulty seed (p_faulty draw), one injected divergence.
def small_config(out_dir, **kwargs):
    defaults = dict(
        seeds=12,
        out_dir=str(out_dir),
        grammar=GrammarConfig(max_stmts=16),
        diff=DiffConfig(check_replay=False),
        inject_seed=3,
    )
    defaults.update(kwargs)
    return FuzzConfig(**defaults)


class TestConfig:
    def test_bad_values_rejected(self):
        with pytest.raises(FuzzError):
            FuzzConfig(seeds=0)
        with pytest.raises(FuzzError):
            FuzzConfig(seed0=-1)
        with pytest.raises(FuzzError):
            FuzzConfig(budget_seconds=0)

    def test_config_hash_tracks_grammar(self):
        a = FuzzConfig(grammar=GrammarConfig(max_stmts=10))
        b = FuzzConfig(grammar=GrammarConfig(max_stmts=11))
        assert a.config_hash() != b.config_hash()


class TestCampaign:
    def test_report_is_byte_identical(self, tmp_path):
        ra = FuzzRunner(small_config(tmp_path / "a")).run()
        rb = FuzzRunner(small_config(tmp_path / "b")).run()
        assert ra.to_json() == rb.to_json()
        assert (tmp_path / "a" / "report.json").read_bytes() == (
            tmp_path / "b" / "report.json"
        ).read_bytes()

    def test_injected_divergence_minimized_and_saved(self, tmp_path):
        report = FuzzRunner(small_config(tmp_path / "o")).run()
        assert report.failures.get("injected") == 1
        (entry,) = [m for m in report.minimized if m["failure"] == "injected"]
        saved = tmp_path / "o" / entry["file"]
        assert saved.exists()
        assert entry["final_stmts"] < entry["original_stmts"]
        # The saved case replays through the corpus loader.
        from repro.gen.corpus import load_case

        case = load_case(saved)
        case.program.validate()

    def test_resume_skips_completed_seeds(self, tmp_path):
        cfg = small_config(tmp_path / "o")
        first = FuzzRunner(cfg).run()
        journal = (tmp_path / "o" / "journal.jsonl").read_bytes()
        second = FuzzRunner(cfg).run(resume=True)
        assert second.completed == first.completed == cfg.seeds
        # Nothing re-ran: the journal is untouched.
        assert (tmp_path / "o" / "journal.jsonl").read_bytes() == journal

    def test_existing_journal_requires_resume_flag(self, tmp_path):
        cfg = small_config(tmp_path / "o")
        FuzzRunner(cfg).run()
        with pytest.raises(FuzzError, match="--resume"):
            FuzzRunner(cfg).run()

    def test_foreign_journal_refused(self, tmp_path):
        cfg = small_config(tmp_path / "o")
        FuzzRunner(cfg).run()
        other = small_config(tmp_path / "o", seeds=13)
        with pytest.raises(FuzzError, match="different fuzz configuration"):
            FuzzRunner(other).run(resume=True)

    def test_corrupt_journal_one_line_error(self, tmp_path):
        # Mid-journal corruption is never recoverable: it cannot come
        # from a torn append, so resuming must refuse the journal.
        cfg = small_config(tmp_path / "o")
        FuzzRunner(cfg).run()
        path = tmp_path / "o" / "journal.jsonl"
        lines = path.read_text().splitlines()
        lines[1] = '{"kind": "case", torn'
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(FuzzError, match="corrupt fuzz journal"):
            FuzzRunner(cfg).run(resume=True)

    def test_torn_final_line_is_recovered_on_resume(self, tmp_path):
        # A torn *final* line is the documented crash hazard: the journal
        # loader drops it with a warning and the resume proceeds, with
        # the report identical to the untorn campaign's.
        cfg = small_config(tmp_path / "o")
        reference = FuzzRunner(cfg).run()
        path = tmp_path / "o" / "journal.jsonl"
        path.write_text(path.read_text() + '{"kind": "case", "seed"')
        resumed = FuzzRunner(cfg).run(resume=True)
        assert resumed.to_json() == reference.to_json()

    def test_budget_stop_is_resumable(self, tmp_path):
        cfg = small_config(tmp_path / "o", budget_seconds=1e-9)
        report = FuzzRunner(cfg).run()
        assert report.stopped == "budget"
        assert report.completed < cfg.seeds
        # Resume without a budget finishes the range deterministically.
        full = FuzzRunner(small_config(tmp_path / "o")).run(resume=True)
        assert full.completed == cfg.seeds
        assert full.stopped == "complete"
        reference = FuzzRunner(small_config(tmp_path / "ref")).run()
        assert full.to_json() == reference.to_json()

    def test_unwritable_out_dir(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("")
        cfg = small_config(blocker / "sub")
        with pytest.raises(FuzzError, match="cannot create output directory"):
            FuzzRunner(cfg).run()

    def test_faulty_seeds_classified_in_campaign(self, tmp_path):
        report = FuzzRunner(
            small_config(tmp_path / "o", grammar=GrammarConfig(p_faulty=0.5))
        ).run()
        journal = (tmp_path / "o" / "journal.jsonl").read_text().splitlines()
        records = [json.loads(line) for line in journal[1:]]
        faulty = [r for r in records if r.get("expect") != "ok"]
        assert faulty, "expected some faulty seeds at p_faulty=0.5"
        for record in faulty:
            assert record["ok"], record
