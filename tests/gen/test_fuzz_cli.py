"""CLI tests for ``repro fuzz``: happy paths and hardened error paths."""

import json

import pytest

from repro.cli import main


def run_small(tmp_path, *extra):
    out = tmp_path / "fuzz-out"
    return main(["fuzz", "--seeds", "8", "--out", str(out), *extra]), out


class TestFuzzCommand:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        rc, out = run_small(tmp_path)
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "8/8 seeds completed" in stdout
        assert (out / "report.json").exists()
        assert (out / "journal.jsonl").exists()

    def test_divergence_exits_one(self, tmp_path, capsys):
        rc, out = run_small(tmp_path, "--inject-divergence", "1")
        assert rc == 1
        stdout = capsys.readouterr().out
        assert "injected" in stdout
        report = json.loads((out / "report.json").read_text())
        assert report["failures"] == {"injected": 1}
        assert report["minimized"]

    def test_resume_after_budget(self, tmp_path, capsys):
        rc, out = run_small(tmp_path, "--budget", "1e-9")
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "resume with:" in stdout and "--resume" in stdout
        rc2, _ = run_small(tmp_path, "--resume")
        assert rc2 == 0
        assert "8/8 seeds completed" in capsys.readouterr().out

    def test_grammar_file_respected(self, tmp_path, capsys):
        grammar = tmp_path / "g.json"
        grammar.write_text(json.dumps({"p_faulty": 0.0, "max_stmts": 12}))
        rc, out = run_small(tmp_path, "--grammar", str(grammar))
        assert rc == 0
        header = json.loads((out / "journal.jsonl").read_text().splitlines()[0])
        assert header["grammar"]["max_stmts"] == 12

    def test_check_corpus_on_committed_cases(self, capsys):
        assert main(["fuzz", "--check-corpus", "src/repro/apps/regressions"]) == 0
        out = capsys.readouterr().out
        assert "regression case(s) OK" in out
        assert "wildcard_recv_order" in out


class TestFuzzErrors:
    """Every bad input is one line on stderr, never a traceback."""

    def test_nonpositive_seeds(self, capsys):
        with pytest.raises(SystemExit):
            main(["fuzz", "--seeds", "0"])
        assert "must be >= 1" in capsys.readouterr().err

    def test_nonpositive_budget(self, capsys):
        with pytest.raises(SystemExit):
            main(["fuzz", "--seeds", "5", "--budget", "0"])
        assert "positive number" in capsys.readouterr().err

    def test_negative_seed0(self, capsys):
        with pytest.raises(SystemExit):
            main(["fuzz", "--seed0", "-4"])
        assert ">= 0" in capsys.readouterr().err

    def test_unwritable_out(self, tmp_path, capsys):
        blocker = tmp_path / "file"
        blocker.write_text("")
        rc = main(["fuzz", "--seeds", "2", "--out", str(blocker / "sub")])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "Traceback" not in err

    def test_bad_grammar_file(self, tmp_path, capsys):
        grammar = tmp_path / "g.json"
        grammar.write_text("{broken")
        rc = main(["fuzz", "--seeds", "2", "--out", str(tmp_path / "o"),
                   "--grammar", str(grammar)])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "not valid JSON" in err

    def test_unknown_grammar_key(self, tmp_path, capsys):
        grammar = tmp_path / "g.json"
        grammar.write_text(json.dumps({"max_statements": 10}))
        rc = main(["fuzz", "--seeds", "2", "--out", str(tmp_path / "o"),
                   "--grammar", str(grammar)])
        assert rc == 2
        assert "unknown grammar key" in capsys.readouterr().err

    def test_journal_without_resume(self, tmp_path, capsys):
        rc1, out = run_small(tmp_path)
        assert rc1 == 0
        rc2 = main(["fuzz", "--seeds", "8", "--out", str(out)])
        assert rc2 == 2
        assert "--resume" in capsys.readouterr().err

    def test_foreign_journal_refused(self, tmp_path, capsys):
        rc1, out = run_small(tmp_path)
        assert rc1 == 0
        rc2 = main(["fuzz", "--seeds", "9", "--out", str(out), "--resume"])
        assert rc2 == 2
        assert "different fuzz configuration" in capsys.readouterr().err

    def test_corrupt_corpus_file(self, tmp_path, capsys):
        (tmp_path / "broken.json").write_text("{nope")
        rc = main(["fuzz", "--check-corpus", str(tmp_path)])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "broken.json" in err
