"""End-to-end service tests against a real ``repro serve`` subprocess:
crash consistency under SIGKILL mid-campaign, and clean SIGTERM exit."""

import json
import re
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

from repro.api import RunResult
from repro.store import ResultStore

APP = "sample_nearest_neighbor"

#: a grid slow enough to kill partway through (several seconds total)
SLOW_GRID = {
    "name": "e2e", "app": APP, "modes": ["de"],
    "nprocs": [2, 4, 8, 16], "calib_procs": 2,
    "inputs": {"iters": 4000},
}


def _start_server(store_dir) -> tuple[subprocess.Popen, str]:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--store", str(store_dir), "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        cwd=str(Path(__file__).resolve().parents[2]),
    )
    line = proc.stdout.readline()
    match = re.search(r"listening on (http://[\d.]+:\d+)", line)
    assert match, f"no listening line, got {line!r}"
    return proc, match.group(1)


def _post(base: str, path: str, doc: dict, timeout: float = 120.0) -> dict:
    req = urllib.request.Request(
        f"{base}{path}", data=json.dumps(doc).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return json.loads(resp.read())


def test_sigterm_is_a_clean_exit(tmp_path):
    proc, base = _start_server(tmp_path)
    try:
        _post(base, "/v1/campaign",
              {"app": APP, "modes": ["de"], "nprocs": [2], "calib_procs": 2})
        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=30)
        tail = proc.stdout.read()
        assert rc == 0, f"exit {rc}: {tail}"
        assert "shutdown complete" in tail
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    # the store flushed its counters on the way out
    stats = ResultStore(tmp_path).stats()
    assert stats["entries"] == 1 and stats["puts"] == 1


def test_sigkill_mid_campaign_leaves_store_consistent(tmp_path):
    """Kill -9 the server mid-campaign: every entry on disk is complete,
    and a restarted server serves the finished prefix as cache hits."""
    import threading

    proc, base = _start_server(tmp_path)
    submitted = threading.Thread(
        target=lambda: _try_post(base, "/v1/campaign", SLOW_GRID),
        daemon=True)
    submitted.start()
    # wait until at least one result landed, then kill without ceremony
    store_glob = tmp_path / "store"
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        done = list(store_glob.glob("*/*.json"))
        if done:
            break
        if proc.poll() is not None:
            pytest.fail(f"server died early: {proc.stdout.read()}")
        time.sleep(0.02)
    else:
        pytest.fail("no result reached the store before the deadline")
    proc.kill()
    proc.wait(timeout=30)

    # crash consistency: the store loads, every surviving entry parses
    store = ResultStore(tmp_path)
    survivors = {}
    for path in store.store_dir.glob("*/*.json"):
        doc = json.loads(path.read_text())  # atomic writes: never torn
        res = RunResult.from_json(doc)
        assert res.ok
        survivors[res.run_id] = res
    assert survivors, "the completed prefix must have survived the kill"
    store.close()

    # a restarted server answers the prefix from cache
    proc2, base2 = _start_server(tmp_path)
    try:
        out = _post(base2, "/v1/campaign", SLOW_GRID, timeout=240)
        assert out["hits"] == len(survivors)
        assert out["misses"] == 4 - len(survivors)
        assert out["outcomes"] == {"ok": 4}
        # and a third submission is then fully warm: zero simulator events
        warm = _post(base2, "/v1/campaign", SLOW_GRID, timeout=60)
        assert warm["hits"] == 4 and warm["executed_events"] == 0
    finally:
        proc2.send_signal(signal.SIGTERM)
        assert proc2.wait(timeout=30) == 0


def _try_post(base, path, doc):
    try:
        _post(base, path, doc)
    except Exception:
        pass  # the server is killed mid-request by design
