"""In-process tests of the serving core: dedupe, purity, admission
control, and the HTTP layer over a real socket (no subprocess)."""

import asyncio
import threading

import pytest

from repro.api import ApiError, CampaignRequest, RunRequest
from repro.serve import (
    ReproServer,
    ServiceClient,
    SimulationService,
    TenantGovernor,
    _read_request,
    run_server,
)
from repro.store import ResultStore

APP = "sample_nearest_neighbor"


def _request(nprocs=(2, 4), mode="de", name="t"):
    return CampaignRequest(
        name=name, machine="IBM-SP", calib_procs=2,
        runs=tuple(RunRequest(app=APP, mode=mode, nprocs=p,
                              inputs=(("n", 64),)) for p in nprocs),
    )


@pytest.fixture
def service(tmp_path):
    return SimulationService(ResultStore(tmp_path), jobs=1)


def test_second_submission_is_all_hits_zero_events(service):
    req = _request()
    first = service.serve_campaign(req)
    assert (first.hits, first.misses) == (0, 2)
    assert first.executed_events > 0
    assert all(r.ok for r in first.results)
    second = service.serve_campaign(req)
    assert (second.hits, second.misses) == (2, 0)
    assert second.executed_events == 0  # zero simulator events on a warm hit
    assert [r.to_json() for r in first.results] == \
        [r.to_json() for r in second.results]


def test_overlapping_grids_share_context_entries(service):
    service.serve_campaign(_request(nprocs=(2, 4)))
    executed_before = service.executed_runs
    # different grid, same context: the overlapping cell must be a hit
    mixed = service.serve_campaign(_request(nprocs=(4, 8), name="other"))
    assert mixed.hits == 1 and mixed.misses == 1
    assert service.executed_runs == executed_before + 1


def test_results_ride_the_request_order(service):
    req = _request(nprocs=(8, 2, 4))
    result = service.serve_campaign(req)
    assert [r.run_id for r in result.results] == [r.run_id for r in req.runs]


def test_different_context_never_shares_results(service):
    service.serve_campaign(_request())
    other = CampaignRequest(
        name="budgeted", machine="IBM-SP", calib_procs=2, max_events=10 ** 7,
        runs=_request().runs,
    )
    out = service.serve_campaign(other)
    assert out.misses == 2  # same runs, different context hash: cold


def test_batch_composition_never_shapes_results(tmp_path):
    """An nprocs sweep served as one batch stores the same numbers as
    each cell served alone: with no pinned calib_procs the calibration
    defaults from each run's *own* nprocs, never from whichever cell
    reached the batch first (the content-addressed purity invariant)."""
    def request(nprocs, name):
        return CampaignRequest(
            name=name, machine="testing",
            runs=tuple(RunRequest(app=APP, mode="am", nprocs=p,
                                  inputs=(("iters", 2),)) for p in nprocs),
        )

    batch = SimulationService(ResultStore(tmp_path / "a"), jobs=1) \
        .serve_campaign(request((2, 4), "sweep"))
    solo = SimulationService(ResultStore(tmp_path / "b"), jobs=1) \
        .serve_campaign(request((4,), "solo"))
    assert batch.results[1].run_id == solo.results[0].run_id
    assert batch.results[1].stats == solo.results[0].stats


def test_handle_run_single_query_and_cache(service):
    doc = {"run": RunRequest(app=APP, mode="de", nprocs=2,
                             inputs=(("n", 64),)).to_json(),
           "machine": "IBM-SP", "calib_procs": 2}
    first = service.handle_run(dict(doc))
    assert first["cached"] is False
    assert first["result"]["outcome"] == "ok"
    second = service.handle_run(dict(doc))
    assert second["cached"] is True
    assert second["result"] == first["result"]


def test_handle_campaign_accepts_raw_grid(service):
    grid = {"app": APP, "modes": ["de"], "nprocs": [2], "calib_procs": 2}
    out = service.handle_campaign(dict(grid))
    assert out["misses"] == 1 and out["outcomes"] == {"ok": 1}
    again = service.handle_campaign(dict(grid))
    assert again["hits"] == 1 and again["executed_events"] == 0


def test_handle_campaign_rejects_bad_grid(service):
    with pytest.raises(ApiError, match="nprocs"):
        service.handle_campaign({"app": APP, "nprocs": []})
    with pytest.raises(ApiError, match="JSON object"):
        service.handle_run([1, 2, 3])


# -- admission control ---------------------------------------------------------


def test_governor_inflight_cap():
    gov = TenantGovernor(max_inflight=1)
    gov.admit("a")
    with pytest.raises(ApiError) as exc:
        gov.admit("a")
    assert exc.value.http_status == 429
    assert exc.value.retry_after is not None
    gov.admit("b")  # other tenants unaffected
    gov.release("a")
    gov.admit("a")  # released slot admits again


def test_governor_event_bucket_post_paid():
    clock = [0.0]
    gov = TenantGovernor(max_inflight=8, events_per_second=100.0,
                         burst_seconds=1.0, clock=lambda: clock[0])
    gov.admit("a")
    gov.charge("a", 600)  # burn far past the 100-token burst
    gov.release("a")
    with pytest.raises(ApiError) as exc:
        gov.admit("a")
    assert exc.value.code == "quota_events"
    assert exc.value.retry_after == pytest.approx(5.0)  # 500 deficit / 100 eps
    clock[0] += 5.5  # refill clears the debt
    gov.admit("a")


def test_charge_is_per_request_not_a_global_delta(tmp_path):
    """Events another tenant's concurrent batch adds to the service-wide
    counter while this request is in flight must not be billed here."""
    governor = TenantGovernor(max_inflight=4, events_per_second=100.0,
                              burst_seconds=1.0, clock=lambda: 0.0)
    service = SimulationService(ResultStore(tmp_path), governor=governor)
    server = ReproServer(service)

    def handler(doc):
        service.executed_events += 10_000  # the other tenant's batch lands
        return {"hits": 1, "misses": 0, "executed_events": 0}

    service.handle_campaign = handler
    raw = asyncio.run(server._dispatch(
        "POST", "/v1/campaign", {"x-tenant": "bystander"}, b"{}"))
    assert raw.startswith(b"HTTP/1.1 200")
    governor.admit("bystander")  # charged zero: still fully admitted


# -- the HTTP layer ------------------------------------------------------------


@pytest.mark.parametrize("value", ["banana", "-1", "12abc"])
def test_read_request_rejects_bad_content_length(value):
    async def parse():
        reader = asyncio.StreamReader()
        reader.feed_data(
            f"POST /v1/run HTTP/1.1\r\nContent-Length: {value}\r\n\r\n".encode())
        reader.feed_eof()
        return await _read_request(reader)

    with pytest.raises(ApiError) as exc:
        asyncio.run(parse())
    assert exc.value.http_status == 400
    assert "Content-Length" in exc.value.message


class _Server:
    """run_server on a daemon thread, bound to an ephemeral port."""

    def __init__(self, tmp_path, **kw):
        self.ready = threading.Event()
        self.server = None

        def on_ready(server):
            self.server = server
            self.ready.set()

        self.thread = threading.Thread(
            target=run_server,
            kwargs=dict(store_dir=tmp_path, port=0, ready=on_ready, **kw),
            daemon=True)
        self.thread.start()
        assert self.ready.wait(15), "server failed to start"

    def client(self, **kw) -> ServiceClient:
        return ServiceClient(port=self.server.port, **kw)

    def stop(self):
        # trip the same event the SIGTERM handler sets
        if self.server.loop is not None and self.server.loop.is_running():
            self.server.loop.call_soon_threadsafe(self.server.stopping.set)
        self.thread.join(15)


def test_http_round_trip_and_stats(tmp_path):
    srv = _Server(tmp_path)
    try:
        client = srv.client()
        assert client.health() == {"status": "ok"}
        req = _request()
        first = client.campaign(req)
        assert first.misses == 2 and all(r.ok for r in first.results)
        second = client.campaign(req)
        assert second.hits == 2 and second.executed_events == 0
        stats = client.stats()
        assert stats["store"]["entries"] == 2
        assert stats["server"]["executed_runs"] == 2
        # content-addressed GET of one stored result
        res = client.result(req.context_hash(), req.runs[0].run_id)
        assert res.ok
        with pytest.raises(ApiError) as exc:
            client.result(req.context_hash(), "0" * 16)
        assert exc.value.http_status == 404
    finally:
        srv.stop()


def test_http_quota_returns_429_with_retry_after(tmp_path):
    srv = _Server(tmp_path, events_per_second=1.0)
    try:
        client = srv.client(tenant="greedy")
        client.campaign(_request())  # post-paid: drives the bucket negative
        with pytest.raises(ApiError) as exc:
            client.campaign(_request(nprocs=(8,)))
        assert exc.value.http_status == 429
        assert exc.value.code == "quota_events"
        assert exc.value.retry_after > 0
        # an unrelated tenant is not throttled
        other = srv.client(tenant="frugal")
        assert other.campaign(_request(name="frugal")).hits == 2
    finally:
        srv.stop()


def test_http_bad_requests(tmp_path):
    srv = _Server(tmp_path)
    try:
        client = srv.client()
        with pytest.raises(ApiError) as exc:
            client._request("POST", "/v1/run", {"app": "", "mode": "de",
                                                "nprocs": 2})
        assert exc.value.http_status == 400
        with pytest.raises(ApiError) as exc:
            client._request("GET", "/nope")
        assert exc.value.http_status == 404
        with pytest.raises(ApiError) as exc:
            client._request("POST", "/v1/campaign", None)
        assert exc.value.http_status == 400
    finally:
        srv.stop()
