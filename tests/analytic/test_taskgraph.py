"""Tests for the dynamic-task-graph analytical predictor."""

import pytest

from repro.analytic import analytic_predict, taskgraph_predict
from repro.apps import build_sweep3d, build_tomcatv, sweep3d_inputs, tomcatv_inputs
from repro.ir import ProgramBuilder, myid, P
from repro.machine import IBM_SP, TESTING_MACHINE
from repro.symbolic import Gt, Lt
from repro.workflow import ModelingWorkflow


@pytest.fixture(scope="module")
def sweep_wf():
    wf = ModelingWorkflow(
        build_sweep3d(),
        IBM_SP,
        calib_inputs=sweep3d_inputs(32, 32, 32, 4, kb=2, ab=1, niter=1),
        calib_nprocs=4,
    )
    wf.calibrate()
    return wf


class TestAgainstSimulation:
    def test_captures_wavefront_pipelines(self, sweep_wf):
        """Unlike per-rank summation, the task graph sees the pipeline:
        the longest-path estimate tracks the simulation closely."""
        inputs = sweep3d_inputs(32, 32, 32, 16, kb=2, ab=1, niter=1)
        sim = sweep_wf.run_am(inputs, 16).elapsed
        tg = taskgraph_predict(
            sweep_wf.compiled.simplified, inputs, 16, IBM_SP, sweep_wf.wparams
        )
        per_rank = analytic_predict(
            sweep_wf.compiled.simplified, inputs, 16, IBM_SP, sweep_wf.wparams
        )
        tg_err = abs(tg.elapsed - sim) / sim
        pr_err = abs(per_rank.elapsed - sim) / sim
        assert tg_err < 0.15
        assert tg_err < pr_err  # the graph analysis strictly improves the bound

    def test_bsp_program_close(self):
        wf = ModelingWorkflow(
            build_tomcatv(), IBM_SP, calib_inputs=tomcatv_inputs(128, itmax=2), calib_nprocs=4
        )
        wf.calibrate()
        inputs = tomcatv_inputs(128, itmax=2)
        sim = wf.run_am(inputs, 4).elapsed
        tg = taskgraph_predict(wf.compiled.simplified, inputs, 4, IBM_SP, wf.wparams)
        assert tg.elapsed == pytest.approx(sim, rel=0.15)

    def test_simple_pipeline_exact(self):
        """Hand-checkable 1-D pipeline on the testing machine."""
        b = ProgramBuilder("pipe", params=())
        with b.if_(Gt(myid, 0)):
            b.recv(source=myid - 1, nbytes=8, tag=1)
        b.compute("stage", work=1000)
        with b.if_(Lt(myid, P - 1)):
            b.send(dest=myid + 1, nbytes=8, tag=1)
        prog = b.build()

        from repro.ir import make_factory
        from repro.sim import ExecMode, Simulator

        sim = Simulator(4, make_factory(prog, {}), TESTING_MACHINE, mode=ExecMode.DE).run()
        tg = taskgraph_predict(prog, {}, 4, TESTING_MACHINE)
        assert tg.elapsed == pytest.approx(sim.elapsed, rel=0.01)
        assert tg.critical_rank == 3


class TestGraphStatistics:
    def test_counts(self):
        b = ProgramBuilder("c", params=())
        b.send(dest=(myid + 1) % P, nbytes=8, tag=0)
        b.recv(source=(myid - 1 + P) % P, nbytes=8, tag=0)
        b.compute("w", work=10)
        prog = b.build()
        tg = taskgraph_predict(prog, {}, 4, TESTING_MACHINE)
        assert tg.messages == 4
        assert tg.nodes == 3 * 4


class TestErrors:
    def test_wildcard_rejected(self):
        from repro.ir.nodes import RecvStmt

        b = ProgramBuilder("w", params=())
        b.send(dest=(myid + 1) % P, nbytes=8, tag=0)
        prog = b.build()
        prog.body.append(RecvStmt(source=-1, nbytes=8, tag=0))
        prog.number()
        with pytest.raises(ValueError, match="wildcard|fully-specified"):
            taskgraph_predict(prog, {}, 2, TESTING_MACHINE)

    def test_unmatched_detected(self):
        b = ProgramBuilder("u", params=())
        with b.if_(Gt(myid, 0)):
            b.send(dest=myid - 1, nbytes=8, tag=0)
        # nobody receives
        prog = b.build()
        with pytest.raises(ValueError, match="unmatched"):
            taskgraph_predict(prog, {}, 3, TESTING_MACHINE)

    def test_nonblocking_waitall_supported(self):
        from repro.apps import build_sample, sample_inputs_for_ratio
        from repro.machine import ORIGIN_2000

        prog = build_sample("nearest_neighbor")
        inputs = sample_inputs_for_ratio(0.05, ORIGIN_2000, iters=3)
        tg = taskgraph_predict(prog, inputs, 4, ORIGIN_2000)
        assert tg.elapsed > 0
