"""Tests for the pure-analytic predictor."""

import pytest

from repro.analytic import analytic_predict
from repro.apps import (
    build_sample,
    build_sweep3d,
    build_tomcatv,
    sample_inputs_for_ratio,
    sweep3d_inputs,
    tomcatv_inputs,
)
from repro.machine import IBM_SP, ORIGIN_2000
from repro.workflow import ModelingWorkflow


@pytest.fixture(scope="module")
def tomcatv_wf():
    wf = ModelingWorkflow(
        build_tomcatv(), IBM_SP, calib_inputs=tomcatv_inputs(256, itmax=3), calib_nprocs=8
    )
    wf.calibrate()
    return wf


class TestAgainstSimulation:
    def test_bsp_code_close_to_simulation(self, tomcatv_wf):
        """Tomcatv is bulk-synchronous: the analytic estimate tracks the
        simulated one closely."""
        inputs = tomcatv_inputs(256, itmax=3)
        sim = tomcatv_wf.run_am(inputs, 8)
        ana = analytic_predict(
            tomcatv_wf.compiled.simplified, inputs, 8, IBM_SP, tomcatv_wf.wparams
        )
        assert ana.elapsed == pytest.approx(sim.elapsed, rel=0.25)

    def test_lower_bounds_pipelined_code(self):
        """Sweep3D's wavefront coupling is invisible to the analytic
        model: its estimate must undershoot the simulation."""
        wf = ModelingWorkflow(
            build_sweep3d(),
            IBM_SP,
            calib_inputs=sweep3d_inputs(32, 32, 32, 4, kb=2, ab=1, niter=1),
            calib_nprocs=4,
        )
        wf.calibrate()
        inputs = sweep3d_inputs(32, 32, 32, 16, kb=2, ab=1, niter=1)
        sim = wf.run_am(inputs, 16)
        ana = analytic_predict(wf.compiled.simplified, inputs, 16, IBM_SP, wf.wparams)
        assert ana.elapsed < sim.elapsed

    def test_original_program_also_supported(self, tomcatv_wf):
        """The predictor prices direct-execution programs too (compute
        blocks via the CPU model)."""
        inputs = tomcatv_inputs(256, itmax=2)
        ana = analytic_predict(build_tomcatv(), inputs, 8, IBM_SP)
        sim = tomcatv_wf.run_de(inputs, 8)
        assert ana.elapsed == pytest.approx(sim.elapsed, rel=0.25)


class TestStructure:
    def test_per_rank_split(self, tomcatv_wf):
        inputs = tomcatv_inputs(256, itmax=2)
        ana = analytic_predict(
            tomcatv_wf.compiled.simplified, inputs, 8, IBM_SP, tomcatv_wf.wparams
        )
        assert len(ana.per_rank) == 8
        assert all(
            t == pytest.approx(c + m)
            for t, c, m in zip(ana.per_rank, ana.compute, ana.comm)
        )

    def test_imbalance_detects_uneven_blocks(self, tomcatv_wf):
        # 10 columns over 3 ranks: blocks 4/4/2
        ana = analytic_predict(
            tomcatv_wf.compiled.simplified, {"n": 10, "itmax": 1}, 3, IBM_SP,
            tomcatv_wf.wparams,
        )
        assert ana.imbalance > 1.05

    def test_balanced_load_imbalance_near_one(self, tomcatv_wf):
        ana = analytic_predict(
            tomcatv_wf.compiled.simplified, {"n": 64, "itmax": 1}, 4, IBM_SP,
            tomcatv_wf.wparams,
        )
        # interior ranks pay a bit more communication; compute is equal
        assert ana.imbalance < 1.2

    def test_nonblocking_programs_priced(self):
        """SAMPLE nearest-neighbour uses isend/irecv/waitall."""
        prog = build_sample("nearest_neighbor")
        inputs = sample_inputs_for_ratio(0.01, ORIGIN_2000, iters=4)
        ana = analytic_predict(prog, inputs, 4, ORIGIN_2000)
        assert ana.elapsed > 0
        assert all(c > 0 for c in ana.comm[1:-1])
