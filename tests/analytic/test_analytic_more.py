"""Additional analytic-module coverage: stats objects and HPF programs."""

import pytest

from repro.analytic import analytic_predict, taskgraph_predict
from repro.hpf import compile_hpf, jacobi2d_hpf
from repro.machine import TESTING_MACHINE
from repro.ir import make_factory
from repro.sim import ExecMode, Simulator


class TestOnHpfPrograms:
    def test_both_predictors_handle_hpf_output(self):
        prog = compile_hpf(jacobi2d_hpf())
        inputs = {"n": 48, "iters": 2}
        per_rank = analytic_predict(prog, inputs, 4, TESTING_MACHINE)
        tg = taskgraph_predict(prog, inputs, 4, TESTING_MACHINE)
        sim = Simulator(
            4, make_factory(prog, inputs), TESTING_MACHINE, mode=ExecMode.DE
        ).run()
        # Jacobi is bulk-synchronous: everything agrees closely
        assert tg.elapsed == pytest.approx(sim.elapsed, rel=0.15)
        assert per_rank.elapsed == pytest.approx(sim.elapsed, rel=0.30)

    def test_single_rank_degenerate(self):
        prog = compile_hpf(jacobi2d_hpf())
        inputs = {"n": 16, "iters": 1}
        per_rank = analytic_predict(prog, inputs, 1, TESTING_MACHINE)
        tg = taskgraph_predict(prog, inputs, 1, TESTING_MACHINE)
        assert per_rank.per_rank[0] > 0
        assert tg.messages == 0
        assert tg.critical_rank == 0


class TestPredictionObjects:
    def test_imbalance_of_uniform_load_is_one(self):
        from repro.ir import ProgramBuilder

        b = ProgramBuilder("flat", params=())
        b.compute("t", work=1000)
        pred = analytic_predict(b.build(), {}, 4, TESTING_MACHINE)
        assert pred.imbalance == pytest.approx(1.0)
        assert pred.elapsed == pred.per_rank[0]

    def test_empty_program(self):
        from repro.ir import ProgramBuilder

        prog = ProgramBuilder("empty", params=()).build()
        pred = analytic_predict(prog, {}, 3, TESTING_MACHINE)
        assert pred.elapsed == 0.0
        assert pred.imbalance == 1.0
