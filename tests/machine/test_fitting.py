"""Tests for machine-parameter fitting (calibration against benchmarks)."""

import numpy as np
import pytest

from repro.machine import IBM_SP, CpuModel, NetworkModel
from repro.machine.fitting import (
    fit_cpu_params,
    fit_machine,
    fit_network_params,
    kernel_samples,
    pingpong_samples,
)


class TestNetworkFit:
    def test_recovers_nominal_parameters_exactly_from_clean_data(self):
        sizes, rtts = pingpong_samples(IBM_SP, noisy=False)
        fitted = fit_network_params(sizes, rtts, base=IBM_SP.net)
        # clean samples come from the nominal model itself (below the
        # eager limit the structure is exactly affine)
        small = sizes[sizes <= IBM_SP.net.eager_limit]
        small_rtts = rtts[: len(small)]
        refit = fit_network_params(small, small_rtts, base=IBM_SP.net)
        model = NetworkModel(refit)
        nominal = NetworkModel(IBM_SP.net)
        for n in (0, 1024, 8192):
            assert model.transit_time(n) == pytest.approx(nominal.transit_time(n), rel=0.15)

    def test_noisy_fit_close(self):
        sizes, rtts = pingpong_samples(IBM_SP, seed=3, noisy=True)
        fitted = fit_network_params(sizes, rtts, base=IBM_SP.net)
        # ground truth is perturbed (contention): fitted bandwidth should
        # be close to the *effective* (degraded) one
        eff_per_byte = IBM_SP.net.per_byte / IBM_SP.truth.bandwidth_factor
        assert fitted.per_byte == pytest.approx(eff_per_byte, rel=0.25)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            fit_network_params(np.array([8]), np.array([1e-5]))
        with pytest.raises(ValueError):
            fit_network_params(np.array([8, 16]), np.array([1e-5, -1.0]))


class TestCpuFit:
    def test_recovers_parameters_from_clean_data(self):
        ops, ws, times = kernel_samples(IBM_SP, noisy=False)
        fitted = fit_cpu_params(ops, ws, times, base=IBM_SP.cpu)
        assert fitted.time_per_op == pytest.approx(IBM_SP.cpu.time_per_op, rel=0.05)
        assert fitted.mem_factor == pytest.approx(IBM_SP.cpu.mem_factor, rel=0.1)

    def test_fitted_model_predicts_well(self):
        ops, ws, times = kernel_samples(IBM_SP, seed=7, noisy=True)
        fitted = fit_cpu_params(ops, ws, times, base=IBM_SP.cpu)
        cpu = CpuModel(fitted)
        preds = np.array([cpu.task_time(o, w) for o, w in zip(ops, ws)])
        rel_err = np.abs(preds - times) / times
        assert rel_err.max() < 0.1

    def test_monotone_hierarchy_enforced(self):
        # degenerate data where all working sets are tiny: factors stay >= 1
        ops = np.array([1e5, 1e6, 1e7])
        ws = np.array([1024.0, 1024.0, 1024.0])
        times = ops * 2e-8
        fitted = fit_cpu_params(ops, ws, times, base=IBM_SP.cpu)
        assert fitted.mem_factor >= fitted.l2_factor >= 1.0
        assert fitted.time_per_op == pytest.approx(2e-8, rel=0.01)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            fit_cpu_params(np.array([1.0]), np.array([1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            fit_cpu_params(np.ones(3), np.ones(4), np.ones(3))


class TestFullMachineFit:
    def test_fit_machine_roundtrip(self):
        fitted = fit_machine(
            "my-cluster",
            pingpong_samples(IBM_SP, seed=1),
            kernel_samples(IBM_SP, seed=1),
            base=IBM_SP,
        )
        assert fitted.name == "my-cluster"
        # a simulation on the fitted machine is close to one on the preset
        from repro.apps import build_tomcatv, tomcatv_inputs
        from repro.ir import make_factory
        from repro.sim import ExecMode, Simulator

        inputs = tomcatv_inputs(128, itmax=2)
        a = Simulator(4, make_factory(build_tomcatv(), inputs), IBM_SP, mode=ExecMode.DE).run()
        b = Simulator(4, make_factory(build_tomcatv(), inputs), fitted, mode=ExecMode.DE).run()
        assert b.elapsed == pytest.approx(a.elapsed, rel=0.25)
