"""Unit tests for the interconnect timing model."""

import math

import numpy as np
import pytest

from repro.machine import COLLECTIVE_OPS, IBM_SP, KiB, NetworkModel


@pytest.fixture
def net():
    return NetworkModel(IBM_SP.net)


@pytest.fixture
def truth_net():
    return NetworkModel(IBM_SP.net, IBM_SP.truth, rng=np.random.default_rng(7))


class TestPointToPoint:
    def test_zero_byte_message_costs_latency(self, net):
        assert net.transit_time(0) == pytest.approx(IBM_SP.net.latency)

    def test_transit_linear_in_size_below_eager(self, net):
        t1 = net.transit_time(1024)
        t2 = net.transit_time(2048)
        assert (t2 - t1) == pytest.approx(1024 * IBM_SP.net.per_byte)

    def test_rendezvous_adds_handshake(self, net):
        small = net.transit_time(IBM_SP.net.eager_limit)
        big = net.transit_time(IBM_SP.net.eager_limit + 1)
        extra_byte = IBM_SP.net.per_byte
        assert big - small == pytest.approx(IBM_SP.net.rendezvous_latency + extra_byte)

    def test_is_eager(self, net):
        assert net.is_eager(IBM_SP.net.eager_limit)
        assert not net.is_eager(IBM_SP.net.eager_limit + 1)

    def test_negative_size_rejected(self, net):
        with pytest.raises(ValueError):
            net.transit_time(-1)

    def test_overheads_positive(self, net):
        assert net.send_overhead(0) > 0
        assert net.recv_overhead(4 * KiB) > net.recv_overhead(0)

    def test_ground_truth_slower_on_average(self, net, truth_net):
        nominal = net.transit_time(64 * KiB)
        samples = [truth_net.transit_time(64 * KiB) for _ in range(100)]
        assert np.mean(samples) > nominal

    def test_truth_noise_varies(self, truth_net):
        a = truth_net.transit_time(1024)
        b = truth_net.transit_time(1024)
        assert a != b  # lognormal noise applied per message

    def test_noisy_model_requires_rng(self):
        with pytest.raises(ValueError):
            NetworkModel(IBM_SP.net, IBM_SP.truth, rng=None)


class TestCollectives:
    def test_single_process_is_free(self, net):
        for op in COLLECTIVE_OPS:
            assert net.collective_time(op, 1024, 1) == 0.0

    def test_log_scaling_of_bcast(self, net):
        t4 = net.collective_time("bcast", 1024, 4)
        t16 = net.collective_time("bcast", 1024, 16)
        assert t16 == pytest.approx(2 * t4)  # log2(16)=4 vs log2(4)=2

    def test_allreduce_twice_reduce(self, net):
        r = net.collective_time("reduce", 4096, 8)
        ar = net.collective_time("allreduce", 4096, 8)
        assert ar == pytest.approx(2 * r)

    def test_barrier_ignores_payload(self, net):
        assert net.collective_time("barrier", 0, 8) == net.collective_time("barrier", 10**6, 8)

    def test_alltoall_linear_in_procs(self, net):
        t8 = net.collective_time("alltoall", 1024, 8)
        t16 = net.collective_time("alltoall", 1024, 16)
        assert t16 == pytest.approx(t8 * 15 / 7)

    def test_rounds_use_ceil_log2(self, net):
        t5 = net.collective_time("bcast", 0, 5)
        assert t5 == pytest.approx(math.ceil(math.log2(5)) * IBM_SP.net.latency)

    def test_unknown_op_rejected(self, net):
        with pytest.raises(ValueError):
            net.collective_time("gossip", 0, 4)

    def test_invalid_args_rejected(self, net):
        with pytest.raises(ValueError):
            net.collective_time("bcast", -1, 4)
        with pytest.raises(ValueError):
            net.collective_time("bcast", 0, 0)

    def test_truth_collective_slower(self, net, truth_net):
        nominal = net.collective_time("allreduce", 8192, 16)
        samples = [truth_net.collective_time("allreduce", 8192, 16) for _ in range(50)]
        assert np.mean(samples) > nominal
