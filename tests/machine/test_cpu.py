"""Unit tests for the CPU timing model."""

import numpy as np
import pytest

from repro.machine import IBM_SP, CpuModel, CpuParams, KiB, MiB


@pytest.fixture
def cpu():
    return CpuModel(IBM_SP.cpu)


class TestCacheFactor:
    def test_inside_l1_is_unity(self, cpu):
        assert cpu.cache_factor(0) == 1.0
        assert cpu.cache_factor(IBM_SP.cpu.l1_bytes) == 1.0

    def test_at_l2_boundary(self, cpu):
        assert cpu.cache_factor(IBM_SP.cpu.l2_bytes) == pytest.approx(IBM_SP.cpu.l2_factor)

    def test_saturates_at_mem_factor(self, cpu):
        assert cpu.cache_factor(10**12) == pytest.approx(IBM_SP.cpu.mem_factor)

    def test_monotone_nondecreasing(self, cpu):
        sizes = [2**k for k in range(10, 34)]
        factors = [cpu.cache_factor(s) for s in sizes]
        assert all(b >= a for a, b in zip(factors, factors[1:]))

    def test_between_l1_and_l2(self, cpu):
        mid = 512 * KiB
        f = cpu.cache_factor(mid)
        assert 1.0 < f < IBM_SP.cpu.l2_factor

    def test_flat_cache_when_factors_unity(self):
        flat = CpuModel(CpuParams(l2_factor=1.0, mem_factor=1.0))
        assert flat.cache_factor(10**12) == 1.0


class TestTaskTime:
    def test_linear_in_ops_within_regime(self, cpu):
        t1 = cpu.task_time(1000, working_set_bytes=1 * KiB)
        t2 = cpu.task_time(2000, working_set_bytes=1 * KiB)
        assert t2 == pytest.approx(2 * t1)

    def test_zero_ops(self, cpu):
        assert cpu.task_time(0) == 0.0

    def test_negative_ops_rejected(self, cpu):
        with pytest.raises(ValueError):
            cpu.task_time(-1)

    def test_cache_effect_slows_tasks(self, cpu):
        small = cpu.task_time(10**6, working_set_bytes=16 * KiB)
        large = cpu.task_time(10**6, working_set_bytes=256 * MiB)
        assert large > small

    def test_deterministic_without_noise(self, cpu):
        assert cpu.task_time(12345, 100) == cpu.task_time(12345, 100)

    def test_noise_requires_rng(self):
        with pytest.raises(ValueError):
            CpuModel(IBM_SP.cpu, noise_sigma=0.05)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            CpuModel(IBM_SP.cpu, noise_sigma=-0.1, rng=np.random.default_rng(0))

    def test_noise_is_multiplicative_and_bounded(self):
        rng = np.random.default_rng(42)
        noisy = CpuModel(IBM_SP.cpu, noise_sigma=0.02, rng=rng)
        base = CpuModel(IBM_SP.cpu)
        ts = np.array([noisy.task_time(10**6) for _ in range(200)])
        t0 = base.task_time(10**6)
        ratios = ts / t0
        assert 0.9 < ratios.mean() < 1.1
        assert ratios.std() < 0.1

    def test_timer_cost(self, cpu):
        assert cpu.timer_cost() == IBM_SP.cpu.timer_overhead
