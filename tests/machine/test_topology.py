"""Tests for interconnect topologies and hop-dependent latency."""

import pytest

from repro import mpi
from repro.machine import IBM_SP, TOPOLOGIES, NetworkModel, hops, mean_hops
from repro.machine.params import NetworkParams
from repro.sim import ExecMode, Simulator


class TestHopCounts:
    def test_crossbar_uniform(self):
        assert hops("crossbar", 0, 7, 8) == 1
        assert hops("crossbar", 3, 3, 8) == 0

    def test_multistage_log(self):
        assert hops("multistage", 0, 1, 16) == 4  # ceil(log2 16)
        assert hops("multistage", 0, 15, 16) == 4

    def test_hypercube_popcount(self):
        assert hops("hypercube", 0b000, 0b111, 8) == 3
        assert hops("hypercube", 0b101, 0b100, 8) == 1

    def test_torus_wraparound(self):
        # 4x4 torus: 0 -> 3 wraps in one hop
        assert hops("torus2d", 0, 3, 16) == 1
        assert hops("torus2d", 0, 5, 16) == 2  # (1,1) diagonal

    def test_unknown_topology(self):
        with pytest.raises(KeyError, match="unknown topology"):
            hops("ring9000", 0, 1, 4)

    def test_rank_range_checked(self):
        with pytest.raises(ValueError):
            hops("crossbar", 0, 9, 4)

    def test_mean_hops_ordering(self):
        # richer topologies have shorter average paths than a 2-D torus
        assert mean_hops("crossbar", 16) <= mean_hops("hypercube", 16)
        assert mean_hops("hypercube", 16) <= mean_hops("torus2d", 64) + 2

    def test_all_registered_topologies_symmetric(self):
        for kind in TOPOLOGIES:
            for s, d in ((0, 5), (2, 7)):
                assert hops(kind, s, d, 8) == hops(kind, d, s, 8)


class TestHopLatency:
    def _net(self, topology, per_hop):
        return NetworkModel(NetworkParams(topology=topology, per_hop=per_hop))

    def test_crossbar_unaffected(self):
        net = self._net("crossbar", 5e-6)
        assert net.transit_time(0, 0, 7, 8) == net.transit_time(0)

    def test_hypercube_distance_matters(self):
        net = self._net("hypercube", 5e-6)
        near = net.transit_time(0, 0b000, 0b001, 8)  # 1 hop
        far = net.transit_time(0, 0b000, 0b111, 8)  # 3 hops
        assert far == pytest.approx(near + 2 * 5e-6)

    def test_endpoints_optional(self):
        net = self._net("hypercube", 5e-6)
        assert net.transit_time(1024) > 0  # uniform fallback

    def test_zero_per_hop_is_uniform(self):
        net = self._net("hypercube", 0.0)
        assert net.transit_time(0, 0, 7, 8) == net.transit_time(0)


class TestEndToEnd:
    def test_distant_ranks_communicate_slower(self):
        from dataclasses import replace

        machine = replace(
            IBM_SP, net=replace(IBM_SP.net, topology="torus2d", per_hop=20e-6)
        )

        def prog_pair(a, b):
            def prog(rank, size):
                if rank == a:
                    yield mpi.send(dest=b, nbytes=64)
                elif rank == b:
                    yield mpi.recv(source=a)

            return prog

        near = Simulator(16, prog_pair(0, 1), machine, mode=ExecMode.DE).run()
        far = Simulator(16, prog_pair(0, 10), machine, mode=ExecMode.DE).run()
        assert far.elapsed > near.elapsed
