"""Unit tests for task-graph condensation."""

import pytest

from repro.ir import BranchProfile, ProgramBuilder, myid, P
from repro.stg import PlanRegion, PlanRetain, condense, w_param
from repro.symbolic import Gt, Var

N = Var("N")
K = Var("K")


def simple_comm_compute():
    b = ProgramBuilder("x", params=("N",))
    b.assign("b", N / 2)
    b.compute("pre", work=N)
    b.send(dest=myid, nbytes=8)
    b.compute("post", work=N * 2)
    return b.build()


class TestSegmentation:
    def test_communication_splits_regions(self):
        plan = condense(simple_comm_compute())
        kinds = [type(i).__name__ for i in plan.root]
        assert kinds == ["PlanRegion", "PlanRetain", "PlanRegion"]
        assert len(plan.regions) == 2

    def test_region_cost_uses_w_params(self):
        plan = condense(simple_comm_compute())
        pre, post = plan.regions
        assert pre.cost.evaluate({"N": 10, w_param("pre"): 2.0}) == 20.0
        assert post.cost.evaluate({"N": 10, w_param("post"): 1.0}) == 20.0

    def test_w_params_listed(self):
        plan = condense(simple_comm_compute())
        assert plan.w_params() == (w_param("pre"), w_param("post"))

    def test_adjacent_blocks_merge(self):
        b = ProgramBuilder("m", params=("N",))
        b.compute("a", work=N)
        b.compute("c", work=N * 3)
        plan = condense(b.build())
        assert len(plan.regions) == 1
        r = plan.regions[0]
        assert r.blocks == ("a", "c")
        assert r.cost.evaluate({"N": 2, "w_a": 1.0, "w_c": 10.0}) == 2 + 60

    def test_region_for_lookup(self):
        prog = simple_comm_compute()
        plan = condense(prog)
        pre_block = prog.comp_blocks()[0]
        assert plan.region_for(pre_block.sid) is plan.regions[0]
        assert plan.region_for(9999) is None


class TestLoops:
    def test_comm_free_loop_condenses(self):
        b = ProgramBuilder("l", params=("K", "N"))
        with b.loop("i", 1, K):
            b.compute("body", work=N)
        plan = condense(b.build())
        assert len(plan.regions) == 1
        cost = plan.regions[0].cost
        assert cost.evaluate({"K": 5, "N": 10, "w_body": 1.0}) == 50

    def test_loop_with_comm_retained(self):
        b = ProgramBuilder("l", params=("K", "N"))
        with b.loop("i", 1, K):
            b.compute("body", work=N)
            b.send(dest=myid, nbytes=8)
        plan = condense(b.build())
        assert isinstance(plan.root[0], PlanRetain)
        # the loop body gets its own region around the compute
        inner = plan.root[0].body_plans[0]
        assert any(isinstance(i, PlanRegion) for i in inner)

    def test_index_dependent_loop_cost(self):
        b = ProgramBuilder("tri", params=("K",))
        with b.loop("i", 1, K):
            b.compute("body", work=Var("i"))
        plan = condense(b.build())
        cost = plan.regions[0].cost
        assert cost.evaluate({"K": 4, "w_body": 1.0}) == 10


class TestBranches:
    def test_myid_branch_condenses_with_cond(self):
        b = ProgramBuilder("br", params=("N",))
        with b.if_(Gt(myid, 0)):
            b.compute("a", work=N)
        with b.else_():
            b.compute("z", work=N * 2)
        plan = condense(b.build())
        assert len(plan.regions) == 1
        cost = plan.regions[0].cost
        env = {"N": 10, "w_a": 1.0, "w_z": 1.0, "P": 4}
        assert cost.evaluate({**env, "myid": 1}) == 10
        assert cost.evaluate({**env, "myid": 0}) == 20

    def test_data_dependent_branch_profile_weighted(self):
        b = ProgramBuilder("dd", params=("N",))
        b.compute("detect", work=1, writes={"flag"}, kernel=lambda e, a: e.__setitem__("flag", 0))
        with b.if_(Gt(Var("flag"), 0), data_dependent=True):
            b.compute("fixup", work=N)
        prog = b.build()
        branch = prog.body[1]
        profile = BranchProfile()
        for _ in range(3):
            profile.record(branch.sid, True)
        profile.record(branch.sid, False)
        plan = condense(prog, profile=profile)
        # single region covering everything; fixup weighted by p=0.75
        assert len(plan.regions) == 1
        cost = plan.regions[0].cost
        val = cost.evaluate({"N": 100, "w_detect": 0.0, "w_fixup": 1.0})
        assert val == pytest.approx(75.0)
        assert branch.sid in plan.eliminated_branches

    def test_directive_overrides_profile(self):
        b = ProgramBuilder("dd", params=("N",))
        with b.if_(Gt(Var("N"), 0), data_dependent=True):
            b.compute("fixup", work=N)
        prog = b.build()
        branch = prog.body[0]
        plan = condense(prog, directives={branch.sid: 0.1})
        val = plan.regions[0].cost.evaluate({"N": 100, "w_fixup": 1.0})
        assert val == pytest.approx(10.0)

    def test_meta_directives_respected(self):
        b = ProgramBuilder("dd", params=("N",))
        with b.if_(Gt(Var("N"), 0), data_dependent=True):
            b.compute("fixup", work=N)
        prog = b.build()
        branch = prog.body[0]
        prog.meta["eliminate_branches"] = {branch.sid: 0.25}
        plan = condense(prog)
        val = plan.regions[0].cost.evaluate({"N": 100, "w_fixup": 1.0})
        assert val == pytest.approx(25.0)

    def test_branch_with_comm_not_condensed(self):
        b = ProgramBuilder("br")
        with b.if_(Gt(myid, 0)):
            b.send(dest=myid - 1, nbytes=8)
        plan = condense(b.build())
        assert isinstance(plan.root[0], PlanRetain)
        assert plan.regions == []


class TestPinning:
    def test_pinned_block_not_condensed(self):
        prog = simple_comm_compute()
        pre = prog.comp_blocks()[0]
        plan = condense(prog, pinned={pre.sid})
        # 'pre' must now be a retained statement
        retained = [i.stmt for i in plan.root if isinstance(i, PlanRetain)]
        assert any(getattr(s, "name", None) == "pre" for s in retained)
        # only 'post' forms a region
        assert [r.blocks for r in plan.regions] == [("post",)]
