"""Unit tests for static task graph synthesis."""

from repro.ir import ProgramBuilder, myid, P
from repro.stg import synthesize_stg
from repro.symbolic import Gt, Lt, Var, ceil_div

N = Var("N")


def shift_program():
    b = ProgramBuilder("shift", params=("N",))
    b.array("D", size=N * ceil_div(N, P))
    b.assign("b", ceil_div(N, P))
    with b.if_(Gt(myid, 0)):
        b.send(dest=myid - 1, nbytes=(N - 2) * 8, array="D", tag=7)
    with b.if_(Lt(myid, P - 1)):
        b.recv(source=myid + 1, nbytes=(N - 2) * 8, array="D", tag=7)
    b.compute("loop_nest", work=N * N, arrays=("D",))
    return b.build()


class TestSynthesis:
    def test_node_kinds_present(self):
        stg = synthesize_stg(shift_program())
        kinds = {n.kind for n in stg.nodes}
        assert {"assign", "branch", "send", "recv", "compute"} <= kinds

    def test_send_node_process_set_guarded(self):
        """The send executes only on {p : p > 0} (Fig. 1(b))."""
        stg = synthesize_stg(shift_program())
        snd = stg.nodes_of_kind("send")[0]
        assert snd.pset.contains(1, {"P": 4})
        assert not snd.pset.contains(0, {"P": 4})

    def test_send_mapping_is_shift(self):
        stg = synthesize_stg(shift_program())
        snd = stg.nodes_of_kind("send")[0]
        assert snd.mapping.apply(3, {"P": 4, "N": 100}) == 2

    def test_compute_node_has_scaling_function(self):
        stg = synthesize_stg(shift_program())
        comp = stg.nodes_of_kind("compute")[0]
        assert comp.work is not None
        assert comp.work.evaluate({"N": 10}) == 100

    def test_communication_edge_pairs_send_recv(self):
        stg = synthesize_stg(shift_program())
        comm = stg.communication_edges()
        assert len(comm) == 1
        src = stg.nodes[comm[0].src]
        dst = stg.nodes[comm[0].dst]
        assert src.kind == "send" and dst.kind == "recv"

    def test_unmatched_tags_not_paired(self):
        b = ProgramBuilder("odd", params=("N",))
        b.send(dest=myid, nbytes=8, tag=1)
        b.recv(source=myid, nbytes=8, tag=2)
        stg = synthesize_stg(b.build())
        assert stg.communication_edges() == []

    def test_loop_back_edge(self):
        b = ProgramBuilder("loop", params=("K",))
        with b.loop("i", 1, Var("K")):
            b.compute("body", work=1)
        stg = synthesize_stg(b.build())
        loop = stg.nodes_of_kind("loop")[0]
        comp = stg.nodes_of_kind("compute")[0]
        ctrl = {(e.src, e.dst) for e in stg.control_edges()}
        assert (loop.nid, comp.nid) in ctrl  # into the body
        assert (comp.nid, loop.nid) in ctrl  # back edge

    def test_else_guard_negated(self):
        b = ProgramBuilder("br")
        with b.if_(Gt(myid, 0)):
            b.compute("a", work=1)
        with b.else_():
            b.compute("z", work=1)
        stg = synthesize_stg(b.build())
        a = next(n for n in stg.nodes_of_kind("compute") if n.label == "a")
        z = next(n for n in stg.nodes_of_kind("compute") if n.label == "z")
        env = {"P": 4}
        assert not a.pset.contains(0, env) and a.pset.contains(1, env)
        assert z.pset.contains(0, env) and not z.pset.contains(1, env)

    def test_collective_node(self):
        b = ProgramBuilder("coll")
        b.allreduce(nbytes=8)
        stg = synthesize_stg(b.build())
        assert len(stg.nodes_of_kind("collective")) == 1

    def test_networkx_export(self):
        g = synthesize_stg(shift_program()).to_networkx()
        assert g.number_of_nodes() == len(synthesize_stg(shift_program()).nodes)
        assert g.number_of_edges() > 0

    def test_str_smoke(self):
        text = str(synthesize_stg(shift_program()))
        assert "STG(shift)" in text and "send" in text


class TestRankifyIsolation:
    """Regression: _rankify's substitution mapping must be per-call.

    It used to be a mutable default argument — one shared dict across
    every call — so a caller passing (or mutating) a custom mapping
    would silently poison all later rank substitutions.
    """

    def test_explicit_mapping_is_used(self):
        from repro.stg.synthesis import _rankify
        from repro.symbolic import RANK, Var

        assert _rankify(Var("myid") + 1) == RANK + 1
        # A custom mapping substitutes what it names, nothing more.
        assert _rankify(Var("owner") + 1, {"owner": RANK}) == RANK + 1

    def test_caller_mutation_does_not_leak(self):
        from repro.stg.synthesis import _rankify
        from repro.symbolic import RANK, Var

        poisoned = {"myid": Var("other")}
        assert _rankify(Var("myid"), poisoned) == Var("other")
        # The default path must be unaffected by the call above.
        assert _rankify(Var("myid")) == RANK

    def test_default_not_shared(self):
        import inspect

        from repro.stg.synthesis import _rankify

        (default,) = [
            p.default
            for p in inspect.signature(_rankify).parameters.values()
            if p.default is not inspect.Parameter.empty
        ]
        assert default is None, "mapping default must not be a mutable object"
