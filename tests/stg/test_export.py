"""Tests for DOT export of static task graphs."""

from repro.apps import build_tomcatv
from repro.hpf import compile_hpf, jacobi2d_hpf
from repro.ir import ProgramBuilder, myid
from repro.stg import synthesize_stg, to_dot, write_dot
from repro.symbolic import Gt


def small_stg():
    b = ProgramBuilder("dot_demo", params=("N",))
    with b.if_(Gt(myid, 0)):
        b.send(dest=myid - 1, nbytes=8, tag=1)
    with b.if_(Gt(3, myid)):
        b.recv(source=myid + 1, nbytes=8, tag=1)
    b.compute("work", work=10)
    return synthesize_stg(b.build())


class TestDot:
    def test_structure(self):
        dot = to_dot(small_stg())
        assert dot.startswith('digraph "dot_demo"')
        assert dot.rstrip().endswith("}")

    def test_all_nodes_present(self):
        stg = small_stg()
        dot = to_dot(stg)
        for n in stg.nodes:
            assert f"n{n.nid} [" in dot

    def test_communication_edges_dashed(self):
        dot = to_dot(small_stg())
        assert "style=dashed" in dot
        assert "->" in dot

    def test_mapping_label_on_comm_edge(self):
        dot = to_dot(small_stg())
        assert "q = myid" in dot or "[q]" in dot  # rank mapping rendered

    def test_quotes_escaped(self):
        dot = to_dot(small_stg())
        # no raw unescaped quotes breaking attributes: parse-ish check
        for line in dot.splitlines():
            assert line.count('"') % 2 == 0

    def test_write_dot(self, tmp_path):
        path = tmp_path / "g.dot"
        write_dot(small_stg(), path)
        assert path.read_text().startswith("digraph")

    def test_tomcatv_and_hpf_graphs_render(self):
        assert "digraph" in to_dot(synthesize_stg(build_tomcatv()))
        assert "digraph" in to_dot(synthesize_stg(compile_hpf(jacobi2d_hpf())))
