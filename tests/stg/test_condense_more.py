"""Additional condensation coverage: nested structures and w-param sets."""

import pytest

from repro.ir import BranchProfile, ProgramBuilder, myid, P
from repro.stg import condense, w_param
from repro.symbolic import Gt, Var

N, K = Var("N"), Var("K")


class TestNestedStructures:
    def test_loop_in_branch_in_loop_condenses(self):
        b = ProgramBuilder("nest", params=("N", "K"))
        with b.loop("i", 1, K):
            with b.if_(Gt(myid, 0)):
                with b.loop("j", 1, Var("i")):
                    b.compute("inner", work=N)
        plan = condense(b.build())
        assert len(plan.regions) == 1
        cost = plan.regions[0].cost
        env = {"N": 10, "K": 3, "w_inner": 1.0, "myid": 1, "P": 4}
        # sum over i of i * N = (1+2+3)*10 = 60
        assert cost.evaluate(env) == 60
        env["myid"] = 0
        assert cost.evaluate(env) == 0

    def test_region_spans_multiple_top_level_statements(self):
        b = ProgramBuilder("span", params=("N",))
        b.assign("a", N * 2)
        b.compute("x", work=N)
        with b.loop("i", 1, 3):
            b.compute("y", work=Var("a"))
        b.compute("z", work=1)
        plan = condense(b.build())
        assert len(plan.regions) == 1
        assert plan.regions[0].blocks == ("x", "y", "z")

    def test_w_params_deduplicated_across_regions(self):
        b = ProgramBuilder("dup", params=("N",))
        b.compute("t", work=N)
        b.barrier()
        b.compute("t", work=N * 2)  # same task name, different site
        plan = condense(b.build())
        assert plan.w_params() == (w_param("t"),)

    def test_profile_default_half_without_observations(self):
        b = ProgramBuilder("dd", params=("N",))
        with b.if_(Gt(Var("N"), 0), data_dependent=True):
            b.compute("f", work=N)
        plan = condense(b.build(), profile=BranchProfile())
        val = plan.regions[0].cost.evaluate({"N": 100, "w_f": 1.0})
        assert val == pytest.approx(50.0)
