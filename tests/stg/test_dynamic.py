"""Unit tests for dynamic task-graph expansion from traces."""

import pytest

from repro import mpi
from repro.machine import TESTING_MACHINE
from repro.sim import ExecMode, Simulator
from repro.stg import critical_path, critical_path_length, trace_to_dag


def traced(nprocs, factory):
    return Simulator(nprocs, factory, TESTING_MACHINE, mode=ExecMode.DE, collect_trace=True).run()


class TestTraceToDag:
    def test_program_order_edges(self):
        def prog(rank, size):
            yield mpi.compute(ops=10)
            yield mpi.compute(ops=20)

        res = traced(1, prog)
        g = trace_to_dag(res.trace)
        assert g.number_of_nodes() == 2
        assert g.has_edge(0, 1)

    def test_message_edge(self):
        def prog(rank, size):
            if rank == 0:
                yield mpi.send(dest=1, nbytes=8)
            else:
                yield mpi.recv(source=0)

        res = traced(2, prog)
        g = trace_to_dag(res.trace)
        send = next(e for e in res.trace.events if e.kind == "send")
        recv = next(e for e in res.trace.events if e.kind == "recv")
        assert g.has_edge(send.eid, recv.eid)

    def test_collective_join(self):
        def prog(rank, size):
            yield mpi.compute(ops=(rank + 1) * 100)
            yield mpi.barrier()

        res = traced(3, prog)
        g = trace_to_dag(res.trace)
        joins = [n for n in g.nodes if isinstance(n, str) and n.startswith("coll_")]
        assert len(joins) == 1
        # the slowest compute must reach every barrier event through the join
        import networkx as nx

        slow_compute = max(
            (e for e in res.trace.events if e.kind == "compute"), key=lambda e: e.end
        )
        for ev in res.trace.events:
            if ev.kind == "collective" and ev.proc != slow_compute.proc:
                assert nx.has_path(g, slow_compute.eid, ev.eid)

    def test_dag_is_acyclic(self):
        def prog(rank, size):
            yield mpi.send(dest=(rank + 1) % size, nbytes=8)
            m = yield mpi.recv(source=(rank - 1) % size)
            yield mpi.compute(ops=10)

        res = traced(4, prog)
        import networkx as nx

        assert nx.is_directed_acyclic_graph(trace_to_dag(res.trace))

    def test_invalid_weight_rejected(self):
        def prog(rank, size):
            yield mpi.compute(ops=1)

        res = traced(1, prog)
        with pytest.raises(ValueError):
            trace_to_dag(res.trace, weight="bogus")


class TestCriticalPath:
    def test_single_chain(self):
        def prog(rank, size):
            yield mpi.compute(ops=100)
            yield mpi.compute(ops=200)

        res = traced(1, prog)
        g = trace_to_dag(res.trace)
        path = critical_path(g)
        assert path == [0, 1]
        expected = 300 * TESTING_MACHINE.cpu.time_per_op
        assert critical_path_length(g) == pytest.approx(expected)

    def test_virtual_critical_path_near_elapsed(self):
        """The virtual-time critical path lower-bounds the elapsed time."""

        def prog(rank, size):
            yield mpi.compute(ops=1000 * (rank + 1))
            if rank == 0:
                yield mpi.send(dest=1, nbytes=64)
            elif rank == 1:
                yield mpi.recv(source=0)
            yield mpi.compute(ops=500)

        res = traced(2, prog)
        g = trace_to_dag(res.trace)
        assert critical_path_length(g) <= res.elapsed * 1.0001

    def test_host_weight_mode(self):
        def prog(rank, size):
            yield mpi.compute(ops=100)

        res = traced(1, prog)
        g = trace_to_dag(res.trace, weight="host")
        assert critical_path_length(g) == pytest.approx(res.stats.total_host_cost)
