"""Tests for the command-line interface."""

import pytest

from repro.cli import APPS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_validate_args(self):
        args = build_parser().parse_args(
            ["validate", "tomcatv", "--procs", "4", "8", "--no-de"]
        )
        assert args.app == "tomcatv" and args.procs == [4, 8] and args.no_de


class TestCommands:
    def test_apps_lists_everything(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        for name in APPS:
            assert name in out

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit, match="unknown app"):
            main(["compile", "linpack"])

    def test_compile(self, capsys):
        assert main(["compile", "tomcatv"]) == 0
        out = capsys.readouterr().out
        assert "condensed region" in out
        assert "call delay(" in out
        assert "read_and_broadcast" in out

    def test_stg(self, capsys):
        assert main(["stg", "tomcatv"]) == 0
        out = capsys.readouterr().out
        assert "STG(tomcatv)" in out

    def test_predict(self, capsys):
        assert main(["predict", "tomcatv", "--procs", "4", "--calib-procs", "4",
                     "--set", "n=128", "--set", "itmax=2"]) == 0
        out = capsys.readouterr().out
        assert "MPI-SIM-AM predictions" in out

    def test_validate(self, capsys):
        assert main(["validate", "tomcatv", "--procs", "4", "--calib-procs", "4",
                     "--set", "n=128", "--set", "itmax=2"]) == 0
        out = capsys.readouterr().out
        assert "%err AM" in out and "max AM error" in out

    def test_validate_no_de(self, capsys):
        assert main(["validate", "tomcatv", "--procs", "2", "--calib-procs", "2",
                     "--set", "n=64", "--set", "itmax=2", "--no-de"]) == 0
        out = capsys.readouterr().out
        assert "MPI-SIM-DE" in out  # column exists, values dashed

    def test_memory(self, capsys):
        assert main(["memory", "tomcatv", "--procs", "4", "--set", "n=1024"]) == 0
        out = capsys.readouterr().out
        assert "reduction" in out

    def test_bad_override(self):
        with pytest.raises(SystemExit, match="key=value"):
            main(["predict", "tomcatv", "--procs", "2", "--set", "oops"])

    def test_machine_selection(self, capsys):
        assert main(["memory", "tomcatv", "--procs", "4",
                     "--machine", "SGI-Origin-2000", "--set", "n=256"]) == 0
        assert "SGI-Origin-2000" in capsys.readouterr().out

    def test_unknown_machine(self):
        with pytest.raises(KeyError, match="unknown machine"):
            main(["memory", "tomcatv", "--procs", "4", "--machine", "Cray-T3E"])


class TestCalibrate:
    def test_writes_parameter_file(self, tmp_path, capsys):
        out = tmp_path / "w.json"
        assert main(["calibrate", "tomcatv", "--calib-procs", "2",
                     "--set", "n=64", "--set", "itmax=1", "-o", str(out)]) == 0
        from repro.measure import load_params

        params = load_params(out)
        assert set(params) == {"w_residual", "w_tridiag_solve", "w_mesh_update"}
        assert "parameters written" in capsys.readouterr().out


class TestPredictMethods:
    def test_taskgraph_method(self, capsys):
        assert main(["predict", "tomcatv", "--procs", "4", "--calib-procs", "4",
                     "--set", "n=64", "--set", "itmax=1", "--method", "taskgraph"]) == 0
        out = capsys.readouterr().out
        assert "task-graph analytical predictions" in out

    def test_sum_method(self, capsys):
        assert main(["predict", "tomcatv", "--procs", "4", "--calib-procs", "4",
                     "--set", "n=64", "--set", "itmax=1", "--method", "sum"]) == 0
        out = capsys.readouterr().out
        assert "per-rank-sum" in out and "imbalance" in out

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            main(["predict", "tomcatv", "--procs", "4", "--method", "psychic"])
