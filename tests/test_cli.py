"""Tests for the command-line interface."""

import pytest

from repro.cli import APPS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_validate_args(self):
        args = build_parser().parse_args(
            ["validate", "tomcatv", "--procs", "4", "8", "--no-de"]
        )
        assert args.app == "tomcatv" and args.procs == [4, 8] and args.no_de


class TestCommands:
    def test_apps_lists_everything(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        for name in APPS:
            assert name in out

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit, match="unknown app"):
            main(["compile", "linpack"])

    def test_compile(self, capsys):
        assert main(["compile", "tomcatv"]) == 0
        out = capsys.readouterr().out
        assert "condensed region" in out
        assert "call delay(" in out
        assert "read_and_broadcast" in out

    def test_stg(self, capsys):
        assert main(["stg", "tomcatv"]) == 0
        out = capsys.readouterr().out
        assert "STG(tomcatv)" in out

    def test_predict(self, capsys):
        assert main(["predict", "tomcatv", "--procs", "4", "--calib-procs", "4",
                     "--set", "n=128", "--set", "itmax=2"]) == 0
        out = capsys.readouterr().out
        assert "MPI-SIM-AM predictions" in out

    def test_validate(self, capsys):
        assert main(["validate", "tomcatv", "--procs", "4", "--calib-procs", "4",
                     "--set", "n=128", "--set", "itmax=2"]) == 0
        out = capsys.readouterr().out
        assert "%err AM" in out and "max AM error" in out

    def test_validate_no_de(self, capsys):
        assert main(["validate", "tomcatv", "--procs", "2", "--calib-procs", "2",
                     "--set", "n=64", "--set", "itmax=2", "--no-de"]) == 0
        out = capsys.readouterr().out
        assert "MPI-SIM-DE" in out  # column exists, values dashed

    def test_memory(self, capsys):
        assert main(["memory", "tomcatv", "--procs", "4", "--set", "n=1024"]) == 0
        out = capsys.readouterr().out
        assert "reduction" in out

    def test_bad_override(self):
        with pytest.raises(SystemExit, match="key=value"):
            main(["predict", "tomcatv", "--procs", "2", "--set", "oops"])

    def test_machine_selection(self, capsys):
        assert main(["memory", "tomcatv", "--procs", "4",
                     "--machine", "SGI-Origin-2000", "--set", "n=256"]) == 0
        assert "SGI-Origin-2000" in capsys.readouterr().out

    def test_unknown_machine(self):
        with pytest.raises(KeyError, match="unknown machine"):
            main(["memory", "tomcatv", "--procs", "4", "--machine", "Cray-T3E"])


class TestCalibrate:
    def test_writes_parameter_file(self, tmp_path, capsys):
        out = tmp_path / "w.json"
        assert main(["calibrate", "tomcatv", "--calib-procs", "2",
                     "--set", "n=64", "--set", "itmax=1", "-o", str(out)]) == 0
        from repro.measure import load_params

        params = load_params(out)
        assert set(params) == {"w_residual", "w_tridiag_solve", "w_mesh_update"}
        assert "parameters written" in capsys.readouterr().out


class TestArgumentHardening:
    def test_zero_nprocs_rejected(self, capsys):
        with pytest.raises(SystemExit) as ei:
            main(["faults", "sample_nearest_neighbor", "--nprocs", "0"])
        assert ei.value.code == 2
        err = capsys.readouterr().err
        assert "must be >= 1" in err

    def test_negative_procs_rejected(self, capsys):
        with pytest.raises(SystemExit) as ei:
            main(["predict", "tomcatv", "--procs", "-3"])
        assert ei.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_unknown_app_one_line(self):
        with pytest.raises(SystemExit, match="unknown app"):
            main(["faults", "linpack"])

    def test_seed_reproduces_measured_output(self, capsys):
        argv = ["faults", "sample_nearest_neighbor", "--nprocs", "4",
                "--mode", "measured", "--seed", "42"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_seed_changes_measured_output(self, capsys):
        base = ["faults", "sample_nearest_neighbor", "--nprocs", "4",
                "--mode", "measured"]
        assert main(base + ["--seed", "1"]) == 0
        a = capsys.readouterr().out
        assert main(base + ["--seed", "2"]) == 0
        assert capsys.readouterr().out != a


class TestFaultsCommand:
    APP = "sample_nearest_neighbor"

    def test_fault_free_run(self, capsys):
        assert main(["faults", self.APP, "--nprocs", "4"]) == 0
        out = capsys.readouterr().out
        assert "Resilience report" in out
        assert "crashed ranks     : none" in out

    def test_crash_run_reports_and_exits_2(self, capsys):
        rc = main(["faults", self.APP, "--nprocs", "4", "--crash", "2@0.01"])
        assert rc == 2
        out = capsys.readouterr().out
        assert "deadlocked under the fault plan" in out
        assert "rank 2: crashed" in out
        assert "wait chains" in out

    def test_loss_with_retry(self, capsys):
        assert main(["faults", self.APP, "--nprocs", "4",
                     "--loss", "0.05", "--retry", "8:1e-4"]) == 0
        out = capsys.readouterr().out
        assert "retries" in out

    def test_sweep_table(self, capsys):
        assert main(["faults", self.APP, "--nprocs", "4",
                     "--sweep", "0.05", "0.1", "--retry", "8:1e-4"]) == 0
        out = capsys.readouterr().out
        assert "Fault sweep" in out and "slowdown %" in out

    def test_plan_file_loaded(self, tmp_path, capsys):
        import json

        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({"seed": 1, "crashes": [{"rank": 0, "time": 0.0}]}))
        rc = main(["faults", self.APP, "--nprocs", "4", "--plan", str(plan)])
        assert rc == 2
        assert "rank 0: crashed" in capsys.readouterr().out

    def test_bad_plan_file(self, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text('{"gremlins": true}')
        with pytest.raises(SystemExit, match="cannot load fault plan"):
            main(["faults", self.APP, "--nprocs", "4", "--plan", str(plan)])

    def test_bad_crash_spec(self):
        with pytest.raises(SystemExit, match="RANK@TIME"):
            main(["faults", self.APP, "--nprocs", "4", "--crash", "oops"])

    def test_crash_rank_beyond_world(self):
        with pytest.raises(SystemExit, match="crashes rank 9"):
            main(["faults", self.APP, "--nprocs", "4", "--crash", "9@0.1"])

    def test_bad_retry_spec(self):
        with pytest.raises(SystemExit, match="--retry expects"):
            main(["faults", self.APP, "--nprocs", "4", "--retry", "a:b"])

    def test_invalid_loss_probability(self):
        with pytest.raises(SystemExit, match="invalid fault plan"):
            main(["faults", self.APP, "--nprocs", "4", "--loss", "1.5"])

    def test_degrade_flag(self, capsys):
        assert main(["faults", self.APP, "--nprocs", "4",
                     "--degrade", "*:*:0:1:10:0.1"]) == 0
        assert "Resilience report" in capsys.readouterr().out


class TestVersionAndLogging:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as ei:
            main(["--version"])
        assert ei.value.code == 0
        from repro import __version__

        assert f"repro {__version__}" in capsys.readouterr().out

    def test_verbose_sets_info_level(self):
        import logging

        assert main(["-v", "apps"]) == 0
        assert logging.getLogger("repro").level == logging.INFO
        main(["apps"])  # plain invocation restores the quiet default
        assert logging.getLogger("repro").level == logging.WARNING

    def test_log_level_overrides_verbose(self):
        import logging

        assert main(["-v", "--log-level", "debug", "apps"]) == 0
        assert logging.getLogger("repro").level == logging.DEBUG
        main(["apps"])

    def test_unknown_log_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            main(["--log-level", "chatty", "apps"])

    def test_measured_run_logs_seed_breadcrumb(self):
        import io
        import logging

        from repro import mpi
        from repro.machine import TESTING_MACHINE
        from repro.obs.logging import configure_logging
        from repro.sim import ExecMode, Simulator

        stream = io.StringIO()
        root = logging.getLogger("repro")
        for handler in list(root.handlers):  # drop handlers bound to old streams
            root.removeHandler(handler)
        configure_logging(logging.INFO, stream=stream)
        try:

            def prog(rank, size):
                yield mpi.compute(ops=100)

            Simulator(
                2, prog, TESTING_MACHINE, mode=ExecMode.MEASURED, seed=17
            ).run()
        finally:
            text = stream.getvalue()
            for handler in list(root.handlers):
                root.removeHandler(handler)
            configure_logging(logging.WARNING)
        assert "measured run:" in text
        assert "seed=17" in text
        assert TESTING_MACHINE.name in text


class TestFaultsCsv:
    def test_csv_written_with_fault_columns(self, tmp_path, capsys):
        import csv

        out = tmp_path / "ranks.csv"
        assert main(["faults", "sample_nearest_neighbor", "--nprocs", "4",
                     "--loss", "0.05", "--retry", "8:1e-4",
                     "--csv", str(out)]) == 0
        assert "per-rank statistics written" in capsys.readouterr().out
        with open(out) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 4
        assert "retries" in rows[0] and "crashed" in rows[0]


class TestProfileCommand:
    APP = "sample_nearest_neighbor"
    SMALL = ["--set", "grain=1000", "--set", "iters=2", "--nprocs", "4"]

    def test_summary_and_spans(self, capsys):
        assert main(["profile", self.APP, *self.SMALL]) == 0
        out = capsys.readouterr().out
        assert "Profile: sample_nearest_neighbor (de, 4 procs" in out
        assert "4 procs" in out
        assert "sim.run" in out  # the span table
        assert "host (ms)" in out and "virtual (s)" in out

    def test_critical_path_and_comm_matrix(self, capsys):
        assert main(["profile", self.APP, *self.SMALL,
                     "--critical-path", "--comm-matrix"]) == 0
        out = capsys.readouterr().out
        assert "Critical path:" in out
        assert "Communication matrix: 4 ranks" in out

    def test_scaling_loss(self, capsys):
        assert main(["profile", self.APP, "--set", "grain=1000", "--set", "iters=2",
                     "--nprocs", "4", "--scaling-loss", "--procs", "2", "8"]) == 0
        out = capsys.readouterr().out
        assert "Scaling-loss report" in out
        assert "P = [2, 4, 8]" in out

    def test_perfetto_export_valid(self, tmp_path, capsys):
        import json

        path = tmp_path / "profile.json"
        assert main(["profile", self.APP, *self.SMALL, "--perfetto", str(path)]) == 0
        assert "Perfetto trace written" in capsys.readouterr().out
        from repro.obs import validate_perfetto

        doc = json.loads(path.read_text())
        validate_perfetto(doc)
        assert doc["otherData"]["app"] == self.APP
        # both clocks present: rank timelines plus the host-span process
        pids = {ev["pid"] for ev in doc["traceEvents"]}
        assert {0, 1, 2, 3, 4} <= pids

    def test_metrics_trace_and_stats_outputs(self, tmp_path, capsys):
        import csv
        import json

        metrics = tmp_path / "m.jsonl"
        trace = tmp_path / "t.jsonl.gz"
        stats = tmp_path / "s.csv"
        assert main(["profile", self.APP, *self.SMALL,
                     "--metrics", str(metrics), "--trace", str(trace),
                     "--stats", str(stats)]) == 0
        capsys.readouterr()
        lines = [json.loads(x) for x in metrics.read_text().splitlines()]
        assert any(s["name"] == "sim_runs_total" for s in lines)
        from repro.sim import load_trace

        assert load_trace(trace).nprocs == 4
        with open(stats) as fh:
            assert len(list(csv.DictReader(fh))) == 4

    def test_profile_disables_instrumentation_after_run(self):
        from repro.obs import METRICS, TRACER

        assert main(["profile", self.APP, *self.SMALL]) == 0
        assert TRACER.enabled is False
        assert METRICS.enabled is False

    def test_am_mode(self, capsys):
        assert main(["profile", "tomcatv", "--nprocs", "4", "--mode", "am",
                     "--calib-procs", "4", "--set", "n=64", "--set", "itmax=1"]) == 0
        out = capsys.readouterr().out
        assert "workflow.calibrate" in out  # AM profiles include the calibration span
        assert "sim.run" in out


class TestPredictMethods:
    def test_taskgraph_method(self, capsys):
        assert main(["predict", "tomcatv", "--procs", "4", "--calib-procs", "4",
                     "--set", "n=64", "--set", "itmax=1", "--method", "taskgraph"]) == 0
        out = capsys.readouterr().out
        assert "task-graph analytical predictions" in out

    def test_sum_method(self, capsys):
        assert main(["predict", "tomcatv", "--procs", "4", "--calib-procs", "4",
                     "--set", "n=64", "--set", "itmax=1", "--method", "sum"]) == 0
        out = capsys.readouterr().out
        assert "per-rank-sum" in out and "imbalance" in out

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            main(["predict", "tomcatv", "--procs", "4", "--method", "psychic"])


class TestCampaign:
    """The `repro campaign` subcommand: grids, resume, one-line errors."""

    def grid_file(self, tmp_path, **overrides):
        import json

        grid = {
            "name": "cli-tiny",
            "machine": "testing",
            "app": "sample_nearest_neighbor",
            "nprocs": [2, 3],
            "inputs": {"grain": 1000, "msg": 512, "iters": 2},
        }
        grid.update(overrides)
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(grid))
        return str(path)

    def test_campaign_runs_to_completion(self, tmp_path, capsys):
        out = tmp_path / "out"
        assert main(["campaign", "--grid", self.grid_file(tmp_path),
                     "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "2 ok" in text and "results written" in text
        assert (out / "campaign.journal.jsonl").exists()
        assert (out / "results.csv").exists()

    def test_max_runs_then_resume_is_bit_identical(self, tmp_path, capsys):
        grid = self.grid_file(tmp_path)
        ref, out = tmp_path / "ref", tmp_path / "out"
        assert main(["campaign", "--grid", grid, "--out", str(ref)]) == 0
        assert main(["campaign", "--grid", grid, "--out", str(out),
                     "--max-runs", "1"]) == 0
        text = capsys.readouterr().out
        assert "STOPPED" in text and "--resume" in text
        assert main(["campaign", "--grid", grid, "--out", str(out),
                     "--resume"]) == 0
        text = capsys.readouterr().out
        assert "skipped 1 already-complete" in text
        assert (out / "results.csv").read_bytes() == (ref / "results.csv").read_bytes()

    def test_resume_hint_includes_overrides(self, tmp_path, capsys):
        # budgets and machine feed the config hash: a hint without them
        # would be refused as belonging to a different campaign
        grid = self.grid_file(tmp_path)
        out = tmp_path / "out"
        assert main(["campaign", "--grid", grid, "--out", str(out),
                     "--max-wall", "60", "--max-events", "100000",
                     "--max-runs", "1"]) == 0
        text = capsys.readouterr().out
        hint = next(line for line in text.splitlines()
                    if line.startswith("resume with: "))
        assert "--max-wall 60" in hint and "--max-events 100000" in hint
        assert hint.rstrip().endswith("--resume")
        # the printed hint actually works: replay it through the CLI
        argv = hint.removeprefix("resume with: ").split()
        assert argv[:4] == ["python", "-m", "repro", "campaign"]
        assert main(argv[3:]) == 0
        assert "skipped 1 already-complete" in capsys.readouterr().out

    def test_corrupt_journal_one_line_error(self, tmp_path, capsys):
        grid = self.grid_file(tmp_path)
        out = tmp_path / "out"
        assert main(["campaign", "--grid", grid, "--out", str(out)]) == 0
        capsys.readouterr()
        journal = out / "campaign.journal.jsonl"
        lines = journal.read_text().splitlines()
        lines.insert(1, "{torn")  # mid-journal corruption is unrecoverable
        journal.write_text("\n".join(lines) + "\n")
        assert main(["campaign", "--grid", grid, "--out", str(out),
                     "--resume"]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: ")
        assert len(captured.err.strip().splitlines()) == 1  # no traceback

    def test_torn_final_journal_line_resumes(self, tmp_path, capsys):
        # the documented torn-append hazard: dropped with a warning,
        # resume completes instead of erroring
        grid = self.grid_file(tmp_path)
        out = tmp_path / "out"
        assert main(["campaign", "--grid", grid, "--out", str(out)]) == 0
        capsys.readouterr()
        journal = out / "campaign.journal.jsonl"
        journal.write_text(journal.read_text() + '{"type": "run", "run')
        assert main(["campaign", "--grid", grid, "--out", str(out),
                     "--resume"]) == 0

    def test_config_hash_mismatch_one_line_error(self, tmp_path, capsys):
        grid = self.grid_file(tmp_path)
        out = tmp_path / "out"
        assert main(["campaign", "--grid", grid, "--out", str(out)]) == 0
        capsys.readouterr()
        other = self.grid_file(tmp_path, nprocs=[2])
        assert main(["campaign", "--grid", other, "--out", str(out),
                     "--resume"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ") and "different campaign" in err

    def test_resume_without_journal_starts_fresh(self, tmp_path, capsys):
        grid = self.grid_file(tmp_path)
        assert main(["campaign", "--grid", grid, "--out", str(tmp_path / "new"),
                     "--resume"]) == 0
        assert "2 ok" in capsys.readouterr().out

    def test_missing_grid_one_line_error(self, tmp_path, capsys):
        assert main(["campaign", "--grid", str(tmp_path / "nope.json"),
                     "--out", str(tmp_path / "out")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ") and "cannot read grid" in err

    def test_budget_flags_flow_into_outcomes(self, tmp_path, capsys):
        grid = self.grid_file(tmp_path)
        assert main(["campaign", "--grid", grid, "--out", str(tmp_path / "out"),
                     "--max-events", "5"]) == 0
        text = capsys.readouterr().out
        assert "2 budget" in text

    def test_campaign_disables_instrumentation_after_run(self, tmp_path):
        from repro.obs import METRICS, TRACER

        assert main(["campaign", "--grid", self.grid_file(tmp_path),
                     "--out", str(tmp_path / "out")]) == 0
        assert TRACER.enabled is False
        assert METRICS.enabled is False


class TestCampaignTelemetryCli:
    """`repro campaign --live` progress and the telemetry artifacts."""

    def grid_file(self, tmp_path, **overrides):
        import json

        grid = {
            "name": "cli-tiny",
            "machine": "testing",
            "app": "sample_nearest_neighbor",
            "nprocs": [2, 3],
            "inputs": {"grain": 1000, "msg": 512, "iters": 2},
        }
        grid.update(overrides)
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(grid))
        return str(path)

    def test_campaign_writes_telemetry_artifacts_by_default(self, tmp_path, capsys):
        import json

        from repro.obs import validate_perfetto

        out = tmp_path / "out"
        assert main(["campaign", "--grid", self.grid_file(tmp_path),
                     "--out", str(out)]) == 0
        assert "merged telemetry timeline" in capsys.readouterr().out
        assert (out / "telemetry.jsonl").exists()
        doc = json.loads((out / "campaign.perfetto.json").read_text())
        validate_perfetto(doc)
        assert doc["otherData"]["merged_capsules"] == 2

    def test_no_telemetry_flag_suppresses_artifacts(self, tmp_path, capsys):
        out = tmp_path / "out"
        assert main(["campaign", "--grid", self.grid_file(tmp_path),
                     "--out", str(out), "--no-telemetry"]) == 0
        capsys.readouterr()
        assert not (out / "telemetry.jsonl").exists()
        assert not (out / "campaign.perfetto.json").exists()

    def test_live_progress_reports_every_run(self, tmp_path, capsys):
        assert main(["campaign", "--grid", self.grid_file(tmp_path),
                     "--out", str(tmp_path / "out"), "--live"]) == 0
        captured = capsys.readouterr()
        # non-TTY: one plain progress line per completed run
        lines = [ln for ln in captured.err.splitlines() if "ok" in ln]
        assert len(lines) == 2
        assert "1/2" in lines[0] and "2/2" in lines[1]
        assert "events/s" in lines[-1] and "ETA" in lines[-1]

    def test_live_progress_counts_failures(self, tmp_path, capsys):
        grid = self.grid_file(
            tmp_path, nprocs=[3],
            fault_plans=[{"crashes": [{"rank": 0, "time": 0.0}]}])
        assert main(["campaign", "--grid", grid,
                     "--out", str(tmp_path / "out"), "--live"]) == 0
        err = capsys.readouterr().err
        assert "1 failed" in err


class TestInspectCommand:
    """`repro inspect` on campaign directories and flight-dump files."""

    def _campaign(self, tmp_path, **overrides):
        import json

        grid = {
            "name": "cli-tiny",
            "machine": "testing",
            "app": "sample_nearest_neighbor",
            "nprocs": [2, 3],
            "inputs": {"grain": 1000, "msg": 512, "iters": 2},
        }
        grid.update(overrides)
        grid_path = tmp_path / "grid.json"
        grid_path.write_text(json.dumps(grid))
        out = tmp_path / "out"
        assert main(["campaign", "--grid", str(grid_path), "--out", str(out)]) == 0
        return out

    def test_inspect_campaign_dir_renders_timeline_and_metrics(self, tmp_path, capsys):
        out = self._campaign(tmp_path)
        capsys.readouterr()
        assert main(["inspect", str(out)]) == 0
        text = capsys.readouterr().out
        assert "Campaign: cli-tiny" in text
        assert "2/2 runs journaled, 2 ok, 0 failed" in text
        assert "Campaign timeline (merged capsules)" in text
        assert "Aggregate campaign metrics" in text

    def test_inspect_renders_failed_run_flight_dump(self, tmp_path, capsys):
        out = self._campaign(
            tmp_path, nprocs=[3],
            fault_plans=[{"crashes": [{"rank": 0, "time": 0.0}]}])
        capsys.readouterr()
        assert main(["inspect", str(out)]) == 0
        text = capsys.readouterr().out
        assert "finished deadlock" in text
        assert "Flight recorder dump" in text
        assert "wait chains:" in text

    def test_inspect_run_prefix_filter(self, tmp_path, capsys):
        import json

        out = self._campaign(tmp_path)
        capsys.readouterr()
        docs = [json.loads(x) for x in
                (out / "campaign.journal.jsonl").read_text().splitlines()]
        run_id = next(d["run_id"] for d in docs if d.get("type") == "run")
        assert main(["inspect", str(out), "--run", run_id[:8]]) == 0
        text = capsys.readouterr().out
        assert "1/2 runs journaled" in text
        assert main(["inspect", str(out), "--run", "zzzz"]) == 2
        assert "no journaled run" in capsys.readouterr().err

    def test_inspect_perfetto_export(self, tmp_path, capsys):
        import json

        from repro.obs import validate_perfetto

        out = self._campaign(tmp_path)
        trace = tmp_path / "merged.json"
        capsys.readouterr()
        assert main(["inspect", str(out), "--perfetto", str(trace)]) == 0
        capsys.readouterr()
        validate_perfetto(json.loads(trace.read_text()))

    def test_inspect_flight_dump_file(self, tmp_path, capsys):
        dump = tmp_path / "flight.json"
        rc = main(["faults", "sample_nearest_neighbor", "--nprocs", "4",
                   "--crash", "0@0.0", "--flight-dump", str(dump)])
        assert rc == 2
        capsys.readouterr()
        assert main(["inspect", str(dump)]) == 0
        text = capsys.readouterr().out
        assert "Flight recorder dump" in text
        assert "wait chains:" in text

    def test_inspect_missing_path_errors(self, tmp_path, capsys):
        assert main(["inspect", str(tmp_path / "nope")]) == 2
        assert capsys.readouterr().err.startswith("error: ")

    def test_inspect_non_campaign_dir_errors(self, tmp_path, capsys):
        assert main(["inspect", str(tmp_path)]) == 2
        assert "campaign.journal.jsonl" in capsys.readouterr().err


class TestSupervisionCli:
    """New campaign flags and the inspect rendering of supervision state."""

    def test_campaign_parser_accepts_supervision_flags(self):
        args = build_parser().parse_args(
            ["campaign", "--grid", "g.json", "--no-supervise",
             "--heartbeat-timeout", "5", "--poison-threshold", "3",
             "--checkpoint-interval", "100000"]
        )
        assert args.no_supervise
        assert args.heartbeat_timeout == 5.0
        assert args.poison_threshold == 3
        assert args.checkpoint_interval == 100000

    def _campaign(self, tmp_path):
        import json

        grid = {
            "name": "cli-sup",
            "machine": "testing",
            "app": "sample_nearest_neighbor",
            "nprocs": [2, 3],
            "inputs": {"grain": 1000, "msg": 512, "iters": 2},
        }
        grid_path = tmp_path / "grid.json"
        grid_path.write_text(json.dumps(grid))
        out = tmp_path / "out"
        assert main(["campaign", "--grid", str(grid_path), "--out", str(out),
                     "--no-telemetry", "--heartbeat-timeout", "30"]) == 0
        return out

    def test_inspect_renders_hung_cursor_checkpoint_and_quarantine(
            self, tmp_path, capsys):
        import json

        from repro.util.atomic_io import append_jsonl

        out = self._campaign(tmp_path)
        capsys.readouterr()
        docs = [json.loads(x) for x in
                (out / "campaign.journal.jsonl").read_text().splitlines()]
        runs = [d for d in docs if d.get("type") == "run"]
        hung_id, poison_id = runs[0]["run_id"], runs[1]["run_id"]
        config_hash = docs[0]["config_hash"]
        # a later hung record supersedes run 0 (last record wins)
        append_jsonl(out / "campaign.journal.jsonl", {
            "type": "run", "run_id": hung_id, "index": 0, "outcome": "hung",
            "attempts": 1, "elapsed": None, "stats": None,
            "error": "no heartbeat for 31.0s (deadline 30s); killed worker",
            "cursor": {"events": 4096, "virtual_time": 1.5,
                       "wall_seconds": 12.0, "staleness_s": 31.0},
        })
        # a live replay cursor for run 1, as a killed campaign leaves it
        ck_dir = out / "checkpoints"
        ck_dir.mkdir()
        (ck_dir / f"{poison_id}.json").write_text(json.dumps({
            "format": 1, "run_id": poison_id, "config_hash": config_hash,
            "seed": 0, "events": 200000, "virtual_time": 2.5,
            "wall_seconds": 40.0, "rng_state": None, "stats": None,
        }))
        q_dir = out / "quarantine"
        q_dir.mkdir()
        (q_dir / f"{poison_id}.json").write_text(json.dumps({
            "format": 1, "run_id": poison_id, "strikes": 2,
            "error": "quarantined after 2 worker strike(s)",
            "reproducer": {"minimized": True, "original_stmts": 12,
                           "final_stmts": 3, "checks": 7},
        }))
        assert main(["inspect", str(out)]) == 0
        text = capsys.readouterr().out
        assert "finished hung" in text
        assert "last cursor: event 4096" in text
        assert "stale for 31.0s at death" in text
        assert "Replay checkpoints (1 in-progress run(s)" in text
        assert f"{poison_id}: event 200000" in text
        assert f"Quarantined run {poison_id} (2 strike(s))" in text
        assert "minimized reproducer: 12 -> 3 statements" in text

    def test_inspect_run_filter_applies_to_supervision_artifacts(
            self, tmp_path, capsys):
        import json

        out = self._campaign(tmp_path)
        docs = [json.loads(x) for x in
                (out / "campaign.journal.jsonl").read_text().splitlines()]
        runs = [d for d in docs if d.get("type") == "run"]
        keep_id, drop_id = runs[0]["run_id"], runs[1]["run_id"]
        q_dir = out / "quarantine"
        q_dir.mkdir()
        for rid in (keep_id, drop_id):
            (q_dir / f"{rid}.json").write_text(json.dumps({
                "format": 1, "run_id": rid, "strikes": 2, "error": "boom",
                "reproducer": {"minimized": False, "note": "skipped"},
            }))
        capsys.readouterr()
        assert main(["inspect", str(out), "--run", keep_id[:8]]) == 0
        text = capsys.readouterr().out
        assert f"Quarantined run {keep_id}" in text
        assert f"Quarantined run {drop_id}" not in text
        assert "reproducer: skipped" in text


class TestFaultsFlightDump:
    APP = "sample_nearest_neighbor"

    def test_deadlock_writes_dump_and_exits_2(self, tmp_path, capsys):
        import json

        dump_path = tmp_path / "flight.json"
        rc = main(["faults", self.APP, "--nprocs", "4",
                   "--crash", "1@0.01", "--flight-dump", str(dump_path)])
        assert rc == 2
        assert "flight dump written" in capsys.readouterr().out
        dump = json.loads(dump_path.read_text())
        assert dump["events"]
        assert dump["wait_chain"]["crashed"]

    def test_clean_run_still_writes_history(self, tmp_path):
        import json

        dump_path = tmp_path / "flight.json"
        assert main(["faults", self.APP, "--nprocs", "4",
                     "--flight-dump", str(dump_path)]) == 0
        dump = json.loads(dump_path.read_text())
        assert dump["events"] and "wait_chain" not in dump

    def test_recorder_disabled_after_command(self, tmp_path):
        from repro.sim.flightrec import FLIGHT

        main(["faults", self.APP, "--nprocs", "4",
              "--crash", "0@0.0", "--flight-dump", str(tmp_path / "f.json")])
        assert FLIGHT.enabled is False


class TestProfileOut:
    APP = "sample_nearest_neighbor"
    SMALL = ["--set", "grain=1000", "--set", "iters=2", "--nprocs", "4"]

    def test_out_dir_collects_artifacts_with_manifest(self, tmp_path, capsys):
        import json

        out = tmp_path / "prof"
        assert main(["profile", self.APP, *self.SMALL, "--out", str(out)]) == 0
        capsys.readouterr()
        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["app"] == self.APP
        assert manifest["nprocs"] == 4
        for name in manifest["artifacts"].values():
            assert (out / name).exists(), name
        assert set(manifest["artifacts"]) >= {"perfetto", "metrics", "stats"}

    def test_out_dir_respects_explicit_paths(self, tmp_path, capsys):
        import json

        out = tmp_path / "prof"
        elsewhere = tmp_path / "elsewhere.json"
        assert main(["profile", self.APP, *self.SMALL, "--out", str(out),
                     "--perfetto", str(elsewhere)]) == 0
        capsys.readouterr()
        assert elsewhere.exists()
        manifest = json.loads((out / "manifest.json").read_text())
        # an artifact redirected outside --out is recorded by absolute path
        assert manifest["artifacts"]["perfetto"] == str(elsewhere)
