"""Integration tests for the discrete-event MPI simulation kernel."""

import pytest

from repro import mpi
from repro.machine import TESTING_MACHINE, IBM_SP
from repro.sim import (
    CollectiveMismatchError,
    DeadlockError,
    ExecMode,
    Simulator,
)

M = TESTING_MACHINE
NET = M.net


def run(nprocs, factory, machine=M, mode=ExecMode.DE, **kw):
    return Simulator(nprocs, factory, machine, mode=mode, **kw).run()


class TestLocalExecution:
    def test_single_process_compute(self):
        def prog(rank, size):
            yield mpi.compute(ops=1000)

        res = run(1, prog)
        assert res.elapsed == pytest.approx(1000 * M.cpu.time_per_op)

    def test_delay(self):
        def prog(rank, size):
            yield mpi.delay(0.25)
            yield mpi.delay(0.75)

        res = run(1, prog)
        assert res.elapsed == pytest.approx(1.0)

    def test_clock_returned_to_program(self):
        seen = {}

        def prog(rank, size):
            t0 = yield mpi.wtime()
            yield mpi.delay(0.5)
            t1 = yield mpi.wtime()
            seen["dt"] = t1 - t0

        run(1, prog)
        assert seen["dt"] == pytest.approx(0.5)

    def test_timer_charge(self):
        def prog(rank, size):
            yield mpi.wtime(charge_timer=True)

        res = run(1, prog, machine=IBM_SP)
        assert res.elapsed == pytest.approx(IBM_SP.cpu.timer_overhead)

    def test_empty_program(self):
        def prog(rank, size):
            return
            yield  # pragma: no cover

        res = run(4, prog)
        assert res.elapsed == 0.0

    def test_processes_run_independently(self):
        def prog(rank, size):
            yield mpi.compute(ops=1000 * (rank + 1))

        res = run(3, prog)
        per = [p.finish_time for p in res.stats.procs]
        assert per[0] < per[1] < per[2]
        assert res.elapsed == per[2]


class TestPointToPoint:
    def test_eager_message_timing(self):
        """Receiver posted first: completes at send-inject + transit + recv overhead."""
        def prog(rank, size):
            if rank == 0:
                yield mpi.send(dest=1, nbytes=100)
            else:
                yield mpi.recv(source=0)

        res = run(2, prog)
        inject = NET.cpu_overhead + 0.1 * 100 * NET.per_byte
        transit = NET.latency + 100 * NET.per_byte
        recv_oh = NET.cpu_overhead + 0.1 * 100 * NET.per_byte
        assert res.stats.procs[1].finish_time == pytest.approx(inject + transit + recv_oh)
        # eager sender finishes right after injection
        assert res.stats.procs[0].finish_time == pytest.approx(inject)

    def test_late_receiver_waits_for_nothing_extra(self):
        """If the receiver posts after arrival, it completes at post + overhead."""
        def prog(rank, size):
            if rank == 0:
                yield mpi.send(dest=1, nbytes=8)
            else:
                yield mpi.delay(10.0)
                yield mpi.recv(source=0)

        res = run(2, prog)
        recv_oh = NET.cpu_overhead + 0.1 * 8 * NET.per_byte
        assert res.stats.procs[1].finish_time == pytest.approx(10.0 + recv_oh)

    def test_early_receiver_blocks_until_arrival(self):
        def prog(rank, size):
            if rank == 0:
                yield mpi.delay(5.0)
                yield mpi.send(dest=1, nbytes=8)
            else:
                yield mpi.recv(source=0)

        res = run(2, prog)
        assert res.stats.procs[1].finish_time > 5.0
        assert res.stats.procs[1].comm_time == pytest.approx(res.stats.procs[1].finish_time)

    def test_rendezvous_sender_blocks_until_recv_posted(self):
        big = NET.eager_limit + 1

        def prog(rank, size):
            if rank == 0:
                yield mpi.send(dest=1, nbytes=big)
            else:
                yield mpi.delay(3.0)
                yield mpi.recv(source=0)

        res = run(2, prog)
        # sender resumes at the transfer start (>= receiver's post time)
        assert res.stats.procs[0].finish_time >= 3.0

    def test_eager_sender_does_not_block(self):
        def prog(rank, size):
            if rank == 0:
                yield mpi.send(dest=1, nbytes=8)
            else:
                yield mpi.delay(3.0)
                yield mpi.recv(source=0)

        res = run(2, prog)
        assert res.stats.procs[0].finish_time < 1.0

    def test_rendezvous_recv_first(self):
        big = NET.eager_limit + 1

        def prog(rank, size):
            if rank == 0:
                yield mpi.delay(2.0)
                yield mpi.send(dest=1, nbytes=big)
            else:
                yield mpi.recv(source=0)

        res = run(2, prog)
        assert res.stats.procs[0].finish_time >= 2.0
        assert res.stats.procs[1].finish_time > res.stats.procs[0].finish_time

    def test_data_payload_delivered(self):
        received = {}

        def prog(rank, size):
            if rank == 0:
                yield mpi.send(dest=1, nbytes=8, data={"x": 42})
            else:
                m = yield mpi.recv(source=0)
                received.update(m.data)
                assert m.source == 0 and m.nbytes == 8

        run(2, prog)
        assert received == {"x": 42}

    def test_message_ordering_same_pair(self):
        order = []

        def prog(rank, size):
            if rank == 0:
                yield mpi.send(dest=1, nbytes=8, data="first", tag=1)
                yield mpi.send(dest=1, nbytes=8, data="second", tag=1)
            else:
                a = yield mpi.recv(source=0, tag=1)
                b = yield mpi.recv(source=0, tag=1)
                order.extend([a.data, b.data])

        run(2, prog)
        assert order == ["first", "second"]

    def test_tags_disambiguate(self):
        got = {}

        def prog(rank, size):
            if rank == 0:
                yield mpi.send(dest=1, nbytes=8, data="a", tag=10)
                yield mpi.send(dest=1, nbytes=8, data="b", tag=20)
            else:
                m20 = yield mpi.recv(source=0, tag=20)
                m10 = yield mpi.recv(source=0, tag=10)
                got["t20"], got["t10"] = m20.data, m10.data

        run(2, prog)
        assert got == {"t20": "b", "t10": "a"}

    def test_any_source_matches_earliest_arrival(self):
        got = []

        def prog(rank, size):
            if rank == 1:
                yield mpi.delay(1.0)
                yield mpi.send(dest=0, nbytes=8, data="late")
            elif rank == 2:
                yield mpi.send(dest=0, nbytes=8, data="early")
            else:
                m = yield mpi.recv(source=mpi.ANY_SOURCE)
                got.append(m.data)
                m = yield mpi.recv(source=mpi.ANY_SOURCE)
                got.append(m.data)

        run(3, prog)
        assert got == ["early", "late"]

    def test_send_to_invalid_rank(self):
        def prog(rank, size):
            yield mpi.send(dest=5, nbytes=8)

        with pytest.raises(ValueError):
            run(2, prog)

    def test_ring_exchange(self):
        """Every rank sends right and receives from left; totals line up."""
        def prog(rank, size):
            yield mpi.send(dest=(rank + 1) % size, nbytes=64, data=rank)
            m = yield mpi.recv(source=(rank - 1) % size)
            assert m.data == (rank - 1) % size

        res = run(8, prog)
        assert res.stats.total_messages == 8
        assert all(p.messages_received == 1 for p in res.stats.procs)


class TestDeadlock:
    def test_recv_without_send_deadlocks(self):
        def prog(rank, size):
            if rank == 0:
                yield mpi.recv(source=1)
            else:
                yield mpi.compute(ops=10)

        with pytest.raises(DeadlockError, match="rank 0"):
            run(2, prog)

    def test_rendezvous_cycle_deadlocks(self):
        big = NET.eager_limit + 1

        def prog(rank, size):
            yield mpi.send(dest=(rank + 1) % size, nbytes=big)
            yield mpi.recv(source=(rank - 1) % size)

        with pytest.raises(DeadlockError):
            run(2, prog)

    def test_eager_cycle_does_not_deadlock(self):
        def prog(rank, size):
            yield mpi.send(dest=(rank + 1) % size, nbytes=8)
            yield mpi.recv(source=(rank - 1) % size)

        res = run(2, prog)
        assert res.elapsed > 0

    def test_unconsumed_message_detected(self):
        def prog(rank, size):
            if rank == 0:
                yield mpi.send(dest=1, nbytes=8)

        with pytest.raises(DeadlockError, match="unconsumed"):
            run(2, prog)

    def test_partial_collective_deadlocks(self):
        def prog(rank, size):
            if rank == 0:
                yield mpi.barrier()

        with pytest.raises(DeadlockError):
            run(2, prog)


class TestCollectives:
    def test_barrier_synchronizes(self):
        def prog(rank, size):
            yield mpi.delay(float(rank))
            r = yield mpi.barrier()
            assert r.now >= size - 1

        res = run(4, prog)
        finish = [p.finish_time for p in res.stats.procs]
        assert max(finish) == pytest.approx(min(finish))

    def test_bcast_data(self):
        got = []

        def prog(rank, size):
            r = yield mpi.bcast(nbytes=8, root=2, data=("payload" if rank == 2 else None))
            got.append(r.data)

        run(4, prog)
        assert got == ["payload"] * 4

    def test_allreduce_sum(self):
        got = []

        def prog(rank, size):
            r = yield mpi.allreduce(nbytes=8, data=rank + 1, reduce_fn=lambda a, b: a + b)
            got.append(r.data)

        run(4, prog)
        assert got == [10, 10, 10, 10]

    def test_reduce_only_root_gets_value(self):
        got = {}

        def prog(rank, size):
            r = yield mpi.reduce(nbytes=8, data=rank, reduce_fn=max, root=1)
            got[rank] = r.data

        run(3, prog)
        assert got == {0: None, 1: 2, 2: None}

    def test_gather(self):
        got = {}

        def prog(rank, size):
            r = yield mpi.gather(nbytes=8, data=rank * 10, root=0)
            got[rank] = r.data

        run(3, prog)
        assert got[0] == [0, 10, 20] and got[1] is None

    def test_allgather(self):
        got = {}

        def prog(rank, size):
            r = yield mpi.allgather(nbytes=8, data=rank)
            got[rank] = r.data

        run(3, prog)
        assert all(v == [0, 1, 2] for v in got.values())

    def test_scatter(self):
        got = {}

        def prog(rank, size):
            payload = ["a", "b", "c"] if rank == 0 else None
            r = yield mpi.scatter(nbytes=8, data=payload, root=0)
            got[rank] = r.data

        run(3, prog)
        assert got == {0: "a", 1: "b", 2: "c"}

    def test_mismatched_collective_rejected(self):
        def prog(rank, size):
            if rank == 0:
                yield mpi.barrier()
            else:
                yield mpi.bcast(nbytes=8)

        with pytest.raises(CollectiveMismatchError):
            run(2, prog)

    def test_collective_timing_uses_model(self):
        def prog(rank, size):
            yield mpi.bcast(nbytes=1024)

        res = run(4, prog)
        from repro.machine import NetworkModel

        expected = NetworkModel(M.net).collective_time("bcast", 1024, 4)
        assert res.elapsed == pytest.approx(expected)

    def test_sequence_of_collectives(self):
        def prog(rank, size):
            yield mpi.barrier()
            r = yield mpi.allreduce(nbytes=8, data=1, reduce_fn=lambda a, b: a + b)
            assert r.data == size
            yield mpi.barrier()

        res = run(5, prog)
        assert all(p.collectives == 3 for p in res.stats.procs)


class TestAccounting:
    def test_memory_tracking(self):
        def prog(rank, size):
            yield mpi.alloc("A", 1000)
            yield mpi.alloc("B", 500)
            yield mpi.free("B")

        res = run(4, prog)
        assert res.memory.app_bytes == 4 * 1500  # peak, before B freed
        assert res.memory.kernel_bytes == 4 * M.host.thread_overhead_bytes

    def test_compute_and_comm_time_split(self):
        def prog(rank, size):
            yield mpi.compute(ops=10000)
            if rank == 0:
                yield mpi.send(dest=1, nbytes=100)
            else:
                yield mpi.recv(source=0)

        res = run(2, prog)
        p0, p1 = res.stats.procs
        assert p0.compute_time == pytest.approx(10000 * M.cpu.time_per_op)
        assert p0.comm_time > 0 and p1.comm_time > 0

    def test_host_cost_accumulates(self):
        def prog(rank, size):
            yield mpi.compute(ops=10**6)

        res = run(1, prog)
        assert res.stats.total_host_cost >= 10**6 * M.cpu.time_per_op * M.host.direct_exec_factor

    def test_reuse_rejected(self):
        def prog(rank, size):
            yield mpi.compute(ops=1)

        sim = Simulator(1, prog, M)
        sim.run()
        with pytest.raises(RuntimeError):
            sim.run()

    def test_invalid_nprocs(self):
        with pytest.raises(ValueError):
            Simulator(0, lambda r, s: iter(()), M)


class TestModes:
    def _prog(self, rank, size):
        yield mpi.compute(ops=10**5, working_set_bytes=10**7)
        if rank == 0:
            yield mpi.send(dest=1, nbytes=4096)
        elif rank == 1:
            yield mpi.recv(source=0)

    def test_de_is_deterministic(self):
        a = run(2, self._prog, machine=IBM_SP, mode=ExecMode.DE)
        b = run(2, self._prog, machine=IBM_SP, mode=ExecMode.DE)
        assert a.elapsed == b.elapsed

    def test_measured_seed_reproducible(self):
        a = Simulator(2, self._prog, IBM_SP, mode=ExecMode.MEASURED, seed=3).run()
        b = Simulator(2, self._prog, IBM_SP, mode=ExecMode.MEASURED, seed=3).run()
        assert a.elapsed == b.elapsed

    def test_measured_differs_from_de(self):
        de = run(2, self._prog, machine=IBM_SP, mode=ExecMode.DE)
        meas = Simulator(2, self._prog, IBM_SP, mode=ExecMode.MEASURED, seed=1).run()
        assert meas.elapsed != de.elapsed
        # but not wildly: within tens of percent
        assert abs(meas.elapsed - de.elapsed) / meas.elapsed < 0.5


class TestTrace:
    def test_trace_records_dependencies(self):
        def prog(rank, size):
            yield mpi.compute(ops=100)
            if rank == 0:
                yield mpi.send(dest=1, nbytes=8)
            else:
                yield mpi.recv(source=0)

        res = run(2, prog, collect_trace=True)
        kinds = {e.kind for e in res.trace.events}
        assert kinds == {"compute", "send", "recv"}
        recv_ev = next(e for e in res.trace.events if e.kind == "recv")
        send_ev = next(e for e in res.trace.events if e.kind == "send")
        assert recv_ev.deps == (send_ev.eid,)

    def test_trace_collective_grouping(self):
        def prog(rank, size):
            yield mpi.barrier()

        res = run(3, prog, collect_trace=True)
        colls = [e for e in res.trace.events if e.kind == "collective"]
        assert len(colls) == 3
        assert len({e.coll_id for e in colls}) == 1

    def test_trace_disabled_by_default(self):
        def prog(rank, size):
            yield mpi.compute(ops=1)

        assert run(1, prog).trace is None

    def test_by_proc_ordering(self):
        def prog(rank, size):
            yield mpi.compute(ops=10)
            yield mpi.delay(0.1)

        res = run(2, prog, collect_trace=True)
        per = res.trace.by_proc()
        assert [e.kind for e in per[0]] == ["compute", "delay"]
        assert [e.kind for e in per[1]] == ["compute", "delay"]
