"""Tests for non-blocking communication (Isend/Irecv/Waitall)."""

import pytest

from repro import mpi
from repro.machine import TESTING_MACHINE
from repro.sim import DeadlockError, ExecMode, ReceivedMessage, RequestHandle, Simulator

M = TESTING_MACHINE
NET = M.net


def run(nprocs, factory, **kw):
    return Simulator(nprocs, factory, M, mode=ExecMode.DE, **kw).run()


class TestBasics:
    def test_isend_returns_handle(self):
        got = {}

        def prog(rank, size):
            if rank == 0:
                h = yield mpi.isend(dest=1, nbytes=8, data="x")
                got["handle"] = h
                yield mpi.waitall(h)
            else:
                yield mpi.recv(source=0)

        run(2, prog)
        assert isinstance(got["handle"], RequestHandle)
        assert got["handle"].kind == "send"

    def test_irecv_wait_delivers_message(self):
        got = {}

        def prog(rank, size):
            if rank == 0:
                yield mpi.send(dest=1, nbytes=8, data="payload")
            else:
                h = yield mpi.irecv(source=0)
                (msg,) = yield mpi.waitall(h)
                got["msg"] = msg

        run(2, prog)
        assert isinstance(got["msg"], ReceivedMessage)
        assert got["msg"].data == "payload"

    def test_wait_multiple_handles_order(self):
        got = {}

        def prog(rank, size):
            if rank == 0:
                h1 = yield mpi.irecv(source=1, tag=1)
                h2 = yield mpi.irecv(source=1, tag=2)
                r1, r2 = yield mpi.waitall(h1, h2)
                got["tags"] = (r1.tag, r2.tag)
            else:
                yield mpi.send(dest=0, nbytes=8, tag=2)
                yield mpi.send(dest=0, nbytes=8, tag=1)

        run(2, prog)
        assert got["tags"] == (1, 2)  # results follow handle order, not arrival

    def test_wait_unknown_handle_rejected(self):
        def prog(rank, size):
            if rank == 0:
                h = yield mpi.irecv(source=1)
                yield mpi.waitall(h)
                yield mpi.waitall(h)  # already consumed
            else:
                yield mpi.send(dest=0, nbytes=8)
                yield mpi.send(dest=0, nbytes=8)

        with pytest.raises(ValueError, match="unknown or already-completed"):
            run(2, prog)

    def test_wait_requires_handles(self):
        with pytest.raises(TypeError):
            mpi.waitall("not-a-handle")


class TestOverlap:
    def test_isend_does_not_block_on_rendezvous(self):
        """Computation proceeds while the rendezvous is pending."""
        big = NET.eager_limit + 1

        def prog(rank, size):
            if rank == 0:
                h = yield mpi.isend(dest=1, nbytes=big)
                t_after_isend = yield mpi.wtime()
                yield mpi.compute(ops=10**6)  # overlapped work
                yield mpi.waitall(h)
            else:
                yield mpi.delay(0.0005)
                yield mpi.recv(source=0)

        res = run(2, prog)
        # blocking rendezvous would serialize: wait-for-recv + compute;
        # with isend the compute overlaps the rendezvous delay
        compute_time = 10**6 * M.cpu.time_per_op
        assert res.stats.procs[0].finish_time < 0.0005 + compute_time + 0.001

    def test_exchange_without_evenodd_phasing(self):
        """The classic deadlock (everyone blocking-sends left) disappears
        with non-blocking operations — even above the eager limit."""
        big = NET.eager_limit * 2

        def prog(rank, size):
            hs = []
            if rank > 0:
                hs.append((yield mpi.isend(dest=rank - 1, nbytes=big, tag=1)))
                hs.append((yield mpi.irecv(source=rank - 1, tag=2)))
            if rank < size - 1:
                hs.append((yield mpi.isend(dest=rank + 1, nbytes=big, tag=2)))
                hs.append((yield mpi.irecv(source=rank + 1, tag=1)))
            yield mpi.waitall(*hs)

        res = run(4, prog)
        assert res.stats.total_messages == 2 * 3

    def test_blocking_version_of_same_pattern_deadlocks(self):
        big = NET.eager_limit * 2

        def prog(rank, size):
            if rank > 0:
                yield mpi.send(dest=rank - 1, nbytes=big, tag=1)
            if rank < size - 1:
                yield mpi.send(dest=rank + 1, nbytes=big, tag=2)
            if rank > 0:
                yield mpi.recv(source=rank - 1, tag=2)
            if rank < size - 1:
                yield mpi.recv(source=rank + 1, tag=1)

        with pytest.raises(DeadlockError):
            run(4, prog)

    def test_irecv_posted_early_avoids_unexpected_queue(self):
        """Pre-posting receives gives the same completion as late recv
        (timing equivalence check of the handle path)."""

        def prog_pre(rank, size):
            if rank == 0:
                h = yield mpi.irecv(source=1)
                yield mpi.delay(1.0)
                yield mpi.waitall(h)
            else:
                yield mpi.delay(0.5)
                yield mpi.send(dest=0, nbytes=64)

        def prog_late(rank, size):
            if rank == 0:
                yield mpi.delay(1.0)
                yield mpi.recv(source=1)
            else:
                yield mpi.delay(0.5)
                yield mpi.send(dest=0, nbytes=64)

        pre = run(2, prog_pre)
        late = run(2, prog_late)
        # the pre-posted receive completes no later than the late one
        assert pre.stats.procs[0].finish_time <= late.stats.procs[0].finish_time


class TestAccounting:
    def test_wait_blocked_time_counted_as_comm(self):
        def prog(rank, size):
            if rank == 0:
                h = yield mpi.irecv(source=1)
                yield mpi.waitall(h)
            else:
                yield mpi.delay(2.0)
                yield mpi.send(dest=0, nbytes=8)

        res = run(2, prog)
        assert res.stats.procs[0].comm_time >= 2.0

    def test_no_double_count_when_ready_before_wait(self):
        def prog(rank, size):
            if rank == 0:
                h = yield mpi.irecv(source=1)
                yield mpi.delay(5.0)
                yield mpi.waitall(h)  # message long since arrived
            else:
                yield mpi.send(dest=0, nbytes=8)

        res = run(2, prog)
        assert res.stats.procs[0].comm_time < 0.1
        assert res.stats.procs[0].finish_time == pytest.approx(5.0, rel=0.01)

    def test_deadlock_reports_wait(self):
        def prog(rank, size):
            if rank == 0:
                h = yield mpi.irecv(source=1)
                yield mpi.waitall(h)

        with pytest.raises(DeadlockError, match="wait"):
            run(2, prog)

    def test_message_counters(self):
        def prog(rank, size):
            if rank == 0:
                h = yield mpi.isend(dest=1, nbytes=128)
                yield mpi.waitall(h)
            else:
                h = yield mpi.irecv(source=0)
                yield mpi.waitall(h)

        res = run(2, prog)
        assert res.stats.procs[0].messages_sent == 1
        assert res.stats.procs[1].messages_received == 1
        assert res.stats.total_bytes == 128

    def test_trace_dependencies_for_nonblocking(self):
        def prog(rank, size):
            if rank == 0:
                h = yield mpi.isend(dest=1, nbytes=8)
                yield mpi.waitall(h)
            else:
                h = yield mpi.irecv(source=0)
                yield mpi.waitall(h)

        res = run(2, prog, collect_trace=True)
        recv_ev = next(e for e in res.trace.events if e.kind == "recv")
        send_ev = next(e for e in res.trace.events if e.kind == "send")
        assert recv_ev.deps == (send_ev.eid,)
