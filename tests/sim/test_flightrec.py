"""Flight recorder: ring bounding, dump shape, engine auto-attach."""

import json

import pytest

from repro import mpi
from repro.machine import TESTING_MACHINE
from repro.sim import (
    BudgetExceededError,
    DeadlockError,
    ExecMode,
    Simulator,
)
from repro.sim.flightrec import (
    DUMP_FORMAT,
    FLIGHT,
    FlightRecorder,
    format_flight_dump,
)

M = TESTING_MACHINE


def run(nprocs, factory, **kw):
    return Simulator(nprocs, factory, M, mode=ExecMode.DE, **kw).run()


def ring_program(rank, size):
    yield mpi.compute(ops=100)
    yield mpi.send(dest=(rank + 1) % size, nbytes=64, tag=0)
    yield mpi.recv(source=(rank - 1) % size, tag=0)


def deadlock_program(rank, size):
    # everyone receives, nobody sends
    yield mpi.recv(source=(rank + 1) % size, tag=0)


@pytest.fixture(autouse=True)
def _flight_off():
    """Every test starts and ends with the shared recorder disabled."""
    FLIGHT.disable()
    FLIGHT.reset()
    yield
    FLIGHT.disable()
    FLIGHT.reset()


class TestRing:
    def test_ring_is_bounded_and_counts_evictions(self):
        rec = FlightRecorder(capacity=4)
        rec.enable()
        for i in range(10):
            rec.record(float(i), 0, "resume")
        assert len(rec.events) == 4
        assert rec.events_seen == 10
        dump = rec.dump()
        assert dump["events_dropped"] == 6
        # the newest events survive
        assert [ev[0] for ev in dump["events"]] == [6.0, 7.0, 8.0, 9.0]

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)
        rec = FlightRecorder()
        with pytest.raises(ValueError, match="capacity"):
            rec.enable(capacity=-1)

    def test_enable_resets_by_default(self):
        rec = FlightRecorder(capacity=8)
        rec.enable()
        rec.record(1.0, 0, "resume")
        rec.note(seed=7)
        rec.enable()
        assert rec.events == []
        assert rec.events_seen == 0
        assert "meta" not in rec.dump()

    def test_enable_can_preserve_and_regrow(self):
        rec = FlightRecorder(capacity=2)
        rec.enable()
        rec.record(1.0, 0, "a")
        rec.record(2.0, 0, "b")
        rec.enable(capacity=4, reset=False)
        rec.record(3.0, 0, "c")
        assert [ev[2] for ev in rec.events] == ["a", "b", "c"]

    def test_dump_is_json_safe(self):
        rec = FlightRecorder(capacity=4)
        rec.enable()
        rec.note(mode="de", nprocs=2)
        rec.record(0.5, 1, "send")
        doc = json.loads(json.dumps(rec.dump(error="boom")))
        assert doc["format"] == DUMP_FORMAT
        assert doc["error"] == "boom"
        assert doc["meta"] == {"mode": "de", "nprocs": 2}
        assert doc["events"] == [[0.5, 1, "send"]]


class TestEngineIntegration:
    def test_disabled_run_attaches_nothing(self):
        assert not FLIGHT.enabled
        with pytest.raises(DeadlockError) as exc_info:
            run(2, deadlock_program)
        assert exc_info.value.flight is None
        assert FLIGHT.events_seen == 0  # the unrecorded loop ran

    def test_run_records_kernel_events_when_enabled(self):
        FLIGHT.enable()
        run(2, ring_program)
        assert FLIGHT.events_seen > 0
        kinds = {kind for _, _, kind in FLIGHT.events}
        assert "resume" in kinds and "send" in kinds
        meta = FLIGHT.dump()["meta"]
        assert meta["mode"] == ExecMode.DE.value and meta["nprocs"] == 2

    def test_deadlock_dump_carries_wait_chain(self):
        FLIGHT.enable()
        with pytest.raises(DeadlockError) as exc_info:
            run(3, deadlock_program)
        dump = exc_info.value.flight
        assert dump is not None
        assert dump["format"] == DUMP_FORMAT
        blocked = {w["rank"] for w in dump["wait_chain"]["blocked"]}
        assert blocked == {0, 1, 2}
        assert dump["wait_chain"]["cycles"], "the all-recv ring is a cycle"
        assert dump["error"]

    def test_budget_trip_dump_carries_budget_state(self):
        FLIGHT.enable()
        with pytest.raises(BudgetExceededError) as exc_info:
            run(4, ring_program, max_events=5)
        dump = exc_info.value.flight
        assert dump is not None
        assert dump["budget"]["events"] >= 5
        assert dump["events"], "the ring holds the lead-up to the trip"

    def test_flight_events_deterministic_for_fixed_seed(self):
        def capture():
            FLIGHT.enable()
            try:
                run(3, ring_program, seed=11)
                return list(FLIGHT.events)
            finally:
                FLIGHT.disable()

        assert capture() == capture()


class TestFormat:
    def test_render_groups_by_rank_and_honours_last(self):
        rec = FlightRecorder(capacity=32)
        rec.enable()
        for i in range(6):
            rec.record(float(i), i % 2, "resume")
        text = format_flight_dump(rec.dump(), last=2)
        assert "rank 0: last 2 event(s)" in text
        assert "rank 1: last 2 event(s)" in text
        assert "6 events seen" in text

    def test_render_includes_wait_chain_and_budget(self):
        FLIGHT.enable()
        with pytest.raises(DeadlockError) as exc_info:
            run(2, deadlock_program, max_events=100)
        text = format_flight_dump(exc_info.value.flight)
        assert "wait chains:" in text
        assert "circular wait:" in text
        assert "budget state:" in text

    def test_render_tolerates_minimal_dump(self):
        text = format_flight_dump({"events": [], "format": DUMP_FORMAT})
        assert text.startswith("Flight recorder dump")
