"""Unit tests for simulator memory accounting."""

import pytest

from repro.sim import MemoryTracker


class TestMemoryTracker:
    def test_simple_alloc(self):
        t = MemoryTracker(2)
        t.allocate(0, "A", 100)
        t.allocate(1, "A", 200)
        assert t.current_bytes == 300
        assert t.rank_bytes(0) == 100

    def test_free(self):
        t = MemoryTracker(1)
        t.allocate(0, "A", 100)
        t.free(0, "A")
        assert t.current_bytes == 0
        assert t.peak_bytes == 100

    def test_per_rank_peaks_sum(self):
        """Peaks are per-rank: transient allocations on different ranks both count."""
        t = MemoryTracker(2)
        t.allocate(0, "A", 100)
        t.free(0, "A")
        t.allocate(1, "B", 50)
        assert t.peak_bytes == 150

    def test_double_alloc_rejected(self):
        t = MemoryTracker(1)
        t.allocate(0, "A", 10)
        with pytest.raises(ValueError, match="already allocated"):
            t.allocate(0, "A", 10)

    def test_same_name_different_ranks_ok(self):
        t = MemoryTracker(2)
        t.allocate(0, "A", 10)
        t.allocate(1, "A", 10)
        assert t.current_bytes == 20

    def test_free_unknown_rejected(self):
        t = MemoryTracker(1)
        with pytest.raises(ValueError, match="not allocated"):
            t.free(0, "A")

    def test_negative_rejected(self):
        t = MemoryTracker(1)
        with pytest.raises(ValueError):
            t.allocate(0, "A", -1)

    def test_realloc_after_free(self):
        t = MemoryTracker(1)
        t.allocate(0, "A", 10)
        t.free(0, "A")
        t.allocate(0, "A", 30)
        assert t.rank_bytes(0) == 30
        assert t.peak_bytes == 30

    def test_report(self):
        t = MemoryTracker(4, thread_overhead_bytes=1000)
        t.allocate(2, "A", 5000)
        rep = t.report()
        assert rep.app_bytes == 5000
        assert rep.kernel_bytes == 4000
        assert rep.total_bytes == 9000
        assert rep.fits(9000) and not rep.fits(8999)

    def test_zero_procs_rejected(self):
        with pytest.raises(ValueError):
            MemoryTracker(0)

    def test_report_str(self):
        t = MemoryTracker(1)
        assert "MiB" in str(t.report())
