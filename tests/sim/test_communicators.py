"""Tests for sub-communicator (group) collectives."""

import pytest

from repro import mpi
from repro.machine import TESTING_MACHINE
from repro.sim import CollectiveMismatchError, ExecMode, Simulator

M = TESTING_MACHINE


def run(nprocs, factory, **kw):
    return Simulator(nprocs, factory, M, mode=ExecMode.DE, **kw).run()


def row_of(rank, width):
    base = (rank // width) * width
    return tuple(range(base, base + width))


class TestGroupCollectives:
    def test_row_allreduce_values(self):
        """2x2 grid: each row reduces independently."""
        got = {}

        def prog(rank, size):
            r = yield mpi.allreduce(
                nbytes=8, data=rank, reduce_fn=lambda a, b: a + b, group=row_of(rank, 2)
            )
            got[rank] = r.data

        run(4, prog)
        assert got == {0: 1, 1: 1, 2: 5, 3: 5}

    def test_group_bcast(self):
        got = {}

        def prog(rank, size):
            grp = row_of(rank, 2)
            r = yield mpi.bcast(nbytes=8, root=grp[0], data=(f"row{grp[0]}" if rank == grp[0] else None), group=grp)
            got[rank] = r.data

        run(4, prog)
        assert got == {0: "row0", 1: "row0", 2: "row2", 3: "row2"}

    def test_group_barrier_does_not_sync_other_group(self):
        """Row 0 barriers quickly while row 1 is still computing."""

        def prog(rank, size):
            if rank >= 2:
                yield mpi.delay(5.0)
            yield mpi.barrier(group=row_of(rank, 2))

        res = run(4, prog)
        assert res.stats.procs[0].finish_time < 1.0
        assert res.stats.procs[2].finish_time >= 5.0

    def test_group_timing_uses_group_size(self):
        from repro.machine import NetworkModel

        def prog(rank, size):
            grp = row_of(rank, 2)
            yield mpi.bcast(nbytes=1024, root=grp[0], group=grp)

        res = run(4, prog)
        expected = NetworkModel(M.net).collective_time("bcast", 1024, 2)
        assert res.elapsed == pytest.approx(expected)

    def test_interleaved_world_and_group(self):
        def prog(rank, size):
            yield mpi.allreduce(nbytes=8, data=1, reduce_fn=lambda a, b: a + b,
                                group=row_of(rank, 2))
            r = yield mpi.allreduce(nbytes=8, data=1, reduce_fn=lambda a, b: a + b)
            assert r.data == size
            yield mpi.barrier(group=row_of(rank, 2))

        res = run(4, prog)
        assert all(p.collectives == 3 for p in res.stats.procs)

    def test_trace_groups_distinct(self):
        def prog(rank, size):
            yield mpi.barrier(group=row_of(rank, 2))

        res = run(4, prog, collect_trace=True)
        ids = {e.coll_id for e in res.trace.events if e.kind == "collective"}
        assert len(ids) == 2  # one collective instance per row


class TestGroupErrors:
    def test_nonmember_rejected(self):
        def prog(rank, size):
            yield mpi.barrier(group=(0, 1))  # ranks 2,3 are not members

        with pytest.raises(CollectiveMismatchError, match="does not belong"):
            run(4, prog)

    def test_out_of_range_group(self):
        def prog(rank, size):
            yield mpi.barrier(group=(0, 9))

        with pytest.raises(CollectiveMismatchError, match="beyond"):
            run(2, prog)

    def test_root_outside_group(self):
        def prog(rank, size):
            yield mpi.bcast(nbytes=8, root=3, group=(0, 1))

        with pytest.raises(CollectiveMismatchError, match="root"):
            run(2, prog)

    def test_unsorted_group_rejected_at_construction(self):
        with pytest.raises(ValueError, match="sorted"):
            mpi.barrier(group=(1, 0))

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            mpi.barrier(group=())

    def test_partial_group_deadlocks(self):
        from repro.sim import DeadlockError

        def prog(rank, size):
            if rank == 0:
                yield mpi.barrier(group=(0, 1))

        with pytest.raises(DeadlockError):
            run(2, prog)
