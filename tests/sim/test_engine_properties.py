"""Property-based tests of the simulation kernel's invariants.

Hypothesis generates random (but deadlock-free by construction) SPMD
communication programs; the kernel must satisfy conservation and
determinism invariants regardless of pattern, sizes or interleaving.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro import mpi
from repro.machine import TESTING_MACHINE, IBM_SP
from repro.sim import ExecMode, Simulator

M = TESTING_MACHINE


@st.composite
def spmd_programs(draw):
    """A random sequence of SPMD phases, each safe by construction."""
    phases = []
    n_phases = draw(st.integers(1, 6))
    for i in range(n_phases):
        kind = draw(st.sampled_from(["ring", "shift", "nb_exchange", "compute", "coll"]))
        if kind == "ring":
            # a blocking send-then-recv ring is only deadlock-free while
            # sends are buffered: stay within the eager limit
            phases.append(("ring", draw(st.integers(1, M.net.eager_limit)), i))
        elif kind == "shift":
            phases.append(("shift", draw(st.integers(1, 65536)), i))
        elif kind == "nb_exchange":
            phases.append(("nb_exchange", draw(st.integers(1, 65536)), i))
        elif kind == "compute":
            phases.append(("compute", draw(st.integers(0, 10**6)), i))
        else:
            phases.append(("coll", draw(st.sampled_from(["barrier", "allreduce", "bcast"])), i))
    return tuple(phases)


def program_for(phases):
    def prog(rank, size):
        for kind, arg, tag in phases:
            if kind == "ring":
                yield mpi.send(dest=(rank + 1) % size, nbytes=arg, tag=tag)
                yield mpi.recv(source=(rank - 1) % size, tag=tag)
            elif kind == "shift":
                # rightward shift: non-periodic, blocking-safe
                if rank > 0:
                    yield mpi.recv(source=rank - 1, tag=tag)
                if rank < size - 1:
                    yield mpi.send(dest=rank + 1, nbytes=arg, tag=tag)
            elif kind == "nb_exchange":
                handles = []
                if rank > 0:
                    handles.append((yield mpi.irecv(source=rank - 1, tag=tag)))
                    handles.append((yield mpi.isend(dest=rank - 1, nbytes=arg, tag=tag)))
                if rank < size - 1:
                    handles.append((yield mpi.irecv(source=rank + 1, tag=tag)))
                    handles.append((yield mpi.isend(dest=rank + 1, nbytes=arg, tag=tag)))
                if handles:
                    yield mpi.waitall(*handles)
            elif kind == "compute":
                yield mpi.compute(ops=arg * (1 + rank % 3))
            elif arg == "barrier":
                yield mpi.barrier()
            elif arg == "allreduce":
                yield mpi.allreduce(nbytes=8, data=1, reduce_fn=lambda a, b: a + b)
            else:
                yield mpi.bcast(nbytes=64, data=("x" if rank == 0 else None))

    return prog


@given(spmd_programs(), st.integers(2, 6))
@settings(max_examples=40, deadline=None)
def test_no_deadlock_and_clean_termination(phases, nprocs):
    res = Simulator(nprocs, program_for(phases), M, mode=ExecMode.DE).run()
    assert all(p.finish_time >= 0 for p in res.stats.procs)


@given(spmd_programs(), st.integers(2, 6))
@settings(max_examples=40, deadline=None)
def test_message_conservation(phases, nprocs):
    """Every send is received: totals must balance."""
    res = Simulator(nprocs, program_for(phases), M, mode=ExecMode.DE).run()
    sent = sum(p.messages_sent for p in res.stats.procs)
    received = sum(p.messages_received for p in res.stats.procs)
    assert sent == received


@given(spmd_programs(), st.integers(2, 5))
@settings(max_examples=25, deadline=None)
def test_deterministic_replay(phases, nprocs):
    a = Simulator(nprocs, program_for(phases), M, mode=ExecMode.DE).run()
    b = Simulator(nprocs, program_for(phases), M, mode=ExecMode.DE).run()
    assert a.elapsed == b.elapsed
    assert [p.finish_time for p in a.stats.procs] == [p.finish_time for p in b.stats.procs]


@given(spmd_programs(), st.integers(2, 5))
@settings(max_examples=25, deadline=None)
def test_clocks_monotone_and_time_split_consistent(phases, nprocs):
    res = Simulator(nprocs, program_for(phases), M, mode=ExecMode.DE).run()
    for p in res.stats.procs:
        assert p.compute_time >= 0 and p.comm_time >= 0
        # a process cannot finish before the work it performed
        assert p.finish_time + 1e-12 >= p.compute_time


@given(spmd_programs(), st.integers(2, 5), st.integers(0, 3))
@settings(max_examples=20, deadline=None)
def test_measured_mode_reproducible_and_bounded(phases, nprocs, seed):
    de = Simulator(nprocs, program_for(phases), IBM_SP, mode=ExecMode.DE).run()
    m1 = Simulator(nprocs, program_for(phases), IBM_SP, mode=ExecMode.MEASURED, seed=seed).run()
    m2 = Simulator(nprocs, program_for(phases), IBM_SP, mode=ExecMode.MEASURED, seed=seed).run()
    assert m1.elapsed == m2.elapsed
    if de.elapsed > 0:
        # perturbations are gentle: within a factor of 2 of nominal
        assert 0.5 < m1.elapsed / de.elapsed < 2.0


@given(spmd_programs(), st.integers(2, 5))
@settings(max_examples=20, deadline=None)
def test_trace_dependencies_are_acyclic_and_complete(phases, nprocs):
    import networkx as nx

    from repro.stg import trace_to_dag

    res = Simulator(nprocs, program_for(phases), M, mode=ExecMode.DE, collect_trace=True).run()
    g = trace_to_dag(res.trace)
    assert nx.is_directed_acyclic_graph(g)
    recv_events = [e for e in res.trace.events if e.kind == "recv"]
    assert all(e.deps for e in recv_events)  # every receive knows its sender


@given(spmd_programs(), st.integers(2, 5))
@settings(max_examples=15, deadline=None)
def test_host_model_wall_bounded_by_busy(phases, nprocs):
    from repro.parallel import simulate_host_execution

    res = Simulator(nprocs, program_for(phases), M, mode=ExecMode.DE, collect_trace=True).run()
    for h in (1, 2, nprocs):
        est = simulate_host_execution(res.trace, h, M)
        # wall time can never beat perfect division of the busy work
        assert est.wall_time + 1e-15 >= est.busy_time / est.n_hosts
        if est.n_hosts == 1:
            assert est.wall_time == pytest.approx(est.busy_time)
