"""Tests for the engine's watchdog budgets (repro.sim.budget)."""

import pytest

from repro import mpi
from repro.machine import TESTING_MACHINE
from repro.sim import BudgetExceededError, BudgetGuard, ExecMode, SimStats, Simulator

M = TESTING_MACHINE


def ring(iters=20, nbytes=256):
    def prog(rank, size):
        right = (rank + 1) % size
        left = (rank - 1) % size
        for _ in range(iters):
            yield mpi.compute(ops=1000)
            yield mpi.send(dest=right, nbytes=nbytes)
            yield mpi.recv(source=left)

    return prog


def run(factory=None, nprocs=4, **kw):
    return Simulator(nprocs, factory or ring(), M, mode=ExecMode.DE, **kw).run()


class TestGuardValidation:
    @pytest.mark.parametrize("kw", [
        {"max_events": 0},
        {"max_events": -5},
        {"max_virtual_time": 0.0},
        {"max_virtual_time": float("inf")},
        {"max_wall_seconds": float("nan")},
        {"max_wall_seconds": -1.0},
    ])
    def test_bad_limits_rejected(self, kw):
        with pytest.raises(ValueError, match="finite and > 0"):
            Simulator(2, ring(), M, **kw)

    def test_inactive_guard_not_installed(self):
        sim = Simulator(2, ring(), M)
        assert sim._budget is None

    def test_guard_reports_first_violation(self):
        guard = BudgetGuard(max_events=2, max_virtual_time=10.0)
        guard.start()
        assert guard.note_event(0.5) is None
        assert guard.note_event(0.6) is None
        kind, limit, observed = guard.note_event(0.7)
        assert kind == "events" and limit == 2.0 and observed == 3.0

    def test_note_event_without_start_arms_wall_clock_lazily(self):
        # a direct caller that skips start() must not get a spurious
        # wall_time violation measured from the perf_counter epoch
        guard = BudgetGuard(max_wall_seconds=60.0)
        assert guard.note_event(0.0) is None
        assert guard._wall_start is not None  # armed at the first event


class TestEventsBudget:
    def test_fires_with_partial_stats(self):
        baseline = run()
        with pytest.raises(BudgetExceededError) as exc_info:
            run(max_events=20)
        err = exc_info.value
        assert err.kind == "events"
        assert err.observed > err.limit
        assert isinstance(err.stats, SimStats)
        # partial: some work happened, but less than the full run
        assert 0 < err.stats.total_events < baseline.stats.total_events

    def test_generous_budget_changes_nothing(self):
        baseline = run()
        bounded = run(max_events=10 * baseline.stats.total_events)
        assert bounded.elapsed == baseline.elapsed  # bit-identical
        assert bounded.stats.to_dict() == baseline.stats.to_dict()


class TestVirtualTimeBudget:
    def test_fires_with_partial_stats(self):
        baseline = run()
        with pytest.raises(BudgetExceededError) as exc_info:
            run(max_virtual_time=baseline.elapsed / 2)
        err = exc_info.value
        assert err.kind == "virtual_time"
        assert err.observed > err.limit
        assert err.stats is not None
        assert err.stats.total_events < baseline.stats.total_events

    def test_limit_past_the_end_never_fires(self):
        baseline = run()
        bounded = run(max_virtual_time=baseline.elapsed * 2)
        assert bounded.elapsed == baseline.elapsed


class TestWallTimeBudget:
    def test_fires_immediately_with_tiny_budget(self):
        with pytest.raises(BudgetExceededError) as exc_info:
            run(max_wall_seconds=1e-9)
        err = exc_info.value
        assert err.kind == "wall_time"
        assert err.observed > err.limit
        assert isinstance(err.stats, SimStats)  # partial stats attached

    def test_generous_wall_budget_passes(self):
        result = run(max_wall_seconds=300.0)
        assert result.elapsed > 0


class TestErrorShape:
    def test_message_names_the_axis(self):
        with pytest.raises(BudgetExceededError, match="events budget"):
            run(max_events=1)

    def test_partial_stats_counters_are_consistent(self):
        with pytest.raises(BudgetExceededError) as exc_info:
            run(max_events=30)
        stats = exc_info.value.stats
        assert stats.nprocs == 4
        assert stats.total_messages >= 0
        assert stats.total_events == sum(p.events for p in stats.procs)
