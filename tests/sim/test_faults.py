"""Tests for the fault-injection & resilience subsystem."""

import pytest

from repro import mpi
from repro.machine import TESTING_MACHINE
from repro.sim import (
    CrashFault,
    DeadlockError,
    ExecMode,
    FaultPlan,
    LinkDegradation,
    RetryPolicy,
    SendFailed,
    Simulator,
    TimedOut,
)

M = TESTING_MACHINE
BIG = M.net.eager_limit * 2  # rendezvous-sized payload


def run(nprocs, factory, mode=ExecMode.DE, **kw):
    return Simulator(nprocs, factory, M, mode=mode, **kw).run()


def ring(iters=5, nbytes=256):
    """Nearest-neighbour ring exchange: every rank sends right, recvs left."""

    def prog(rank, size):
        right = (rank + 1) % size
        left = (rank - 1) % size
        for _ in range(iters):
            yield mpi.compute(ops=1000)
            yield mpi.send(dest=right, nbytes=nbytes)
            yield mpi.recv(source=left)

    return prog


class TestPlanConstruction:
    def test_empty_plan_is_empty(self):
        assert FaultPlan().is_empty()
        assert not FaultPlan(message_loss=0.1).is_empty()
        assert not FaultPlan(crashes=(CrashFault(0, 1.0),)).is_empty()

    def test_probability_ranges_checked(self):
        with pytest.raises(ValueError, match="message_loss"):
            FaultPlan(message_loss=1.5)
        with pytest.raises(ValueError, match="duplication"):
            FaultPlan(duplication=-0.1)
        with pytest.raises(ValueError, match="send_failure"):
            FaultPlan(send_failure=float("nan"))

    def test_crash_validation(self):
        with pytest.raises(ValueError, match="rank"):
            CrashFault(rank=-1, time=0.0)
        with pytest.raises(ValueError, match="time"):
            CrashFault(rank=0, time=-1.0)
        with pytest.raises(ValueError, match="more than once"):
            FaultPlan(crashes=(CrashFault(1, 0.1), CrashFault(1, 0.2)))

    def test_degradation_validation(self):
        with pytest.raises(ValueError, match="empty"):
            LinkDegradation(start=1.0, end=1.0)
        with pytest.raises(ValueError, match="latency_factor"):
            LinkDegradation(start=0.0, end=1.0, latency_factor=0.5)
        with pytest.raises(ValueError, match="bandwidth_factor"):
            LinkDegradation(start=0.0, end=1.0, bandwidth_factor=0.0)

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="backoff"):
            RetryPolicy(backoff=-1.0)
        assert RetryPolicy(backoff=1e-3, backoff_factor=2.0).delay_after(3) == (
            pytest.approx(4e-3)
        )

    def test_crash_beyond_world_rejected(self):
        plan = FaultPlan(crashes=(CrashFault(8, 0.1),))
        with pytest.raises(ValueError, match="world has 4 ranks"):
            run(4, ring(), faults=plan)

    def test_roundtrip_serialization(self):
        plan = FaultPlan(
            seed=7,
            crashes=(CrashFault(2, 0.5),),
            message_loss=0.1,
            link_loss=((0, 1, 0.3),),
            duplication=0.05,
            send_failure=0.02,
            degradations=(LinkDegradation(0.0, 1.0, latency_factor=3.0, src=1),),
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-plan keys"):
            FaultPlan.from_dict({"seed": 1, "gremlins": True})

    def test_with_loss(self):
        plan = FaultPlan(seed=3).with_loss(0.25)
        assert plan.message_loss == 0.25 and plan.seed == 3


class TestBitIdentity:
    """An empty plan must not perturb predictions at all (acceptance)."""

    @pytest.mark.parametrize("mode", [ExecMode.DE, ExecMode.AM, ExecMode.MEASURED])
    def test_empty_plan_bit_identical(self, mode):
        base = run(4, ring(), mode=mode, seed=11)
        faulty = run(4, ring(), mode=mode, seed=11, faults=FaultPlan())
        assert faulty.elapsed == base.elapsed  # exact, not approx
        assert faulty.stats.total_messages == base.stats.total_messages
        for a, b in zip(base.stats.procs, faulty.stats.procs):
            assert a.comm_time == b.comm_time and a.compute_time == b.compute_time

    def test_none_and_empty_plan_agree(self):
        a = run(4, ring(), faults=None)
        b = run(4, ring(), faults=FaultPlan())
        assert a.elapsed == b.elapsed

    def test_no_fault_counters_without_faults(self):
        res = run(4, ring())
        assert not res.stats.any_faults
        assert res.stats.total_retries == 0
        assert res.stats.crashed_ranks == ()
        assert "retries" not in res.stats.summary()


class TestCrash:
    def test_crash_produces_report_naming_rank(self):
        plan = FaultPlan(crashes=(CrashFault(2, 0.0),))
        with pytest.raises(DeadlockError) as ei:
            run(4, ring(), faults=plan)
        report = ei.value.report
        assert report is not None
        assert report.crashed_ranks == (2,)
        assert 3 in report.blocked_ranks  # 3 receives from 2
        text = report.format()
        assert "crashed at t=" in text and "wait chains" in text

    def test_wait_chain_points_at_crashed_rank(self):
        plan = FaultPlan(crashes=(CrashFault(0, 0.0),))

        def prog(rank, size):
            if rank == 1:
                yield mpi.recv(source=0)

        with pytest.raises(DeadlockError) as ei:
            run(2, prog, faults=plan)
        report = ei.value.report
        (waiter,) = [w for w in report.blocked if w.rank == 1]
        assert waiter.waiting_on == (0,)
        assert "waits on crashed rank" in report.format()

    def test_crash_records_stats(self):
        plan = FaultPlan(crashes=(CrashFault(1, 0.0),))

        def prog(rank, size):
            yield mpi.compute(ops=100)

        res = run(2, prog, faults=plan)
        assert res.stats.crashed_ranks == (1,)
        assert res.stats.procs[1].crashed
        assert res.stats.procs[1].crash_time == 0.0
        assert "crashed" in res.stats.summary()

    def test_late_crash_lets_early_work_finish(self):
        plan = FaultPlan(crashes=(CrashFault(0, 1e9),))
        res = run(4, ring(), faults=plan)
        assert not res.stats.procs[0].crashed  # program ends before the crash


class TestCycleDetection:
    def test_rendezvous_ring_reports_circular_wait(self):
        def prog(rank, size):
            yield mpi.send(dest=(rank + 1) % size, nbytes=BIG)
            yield mpi.recv(source=(rank - 1) % size)

        with pytest.raises(DeadlockError) as ei:
            run(3, prog)
        # fault-free rendezvous cycle: classic deadlock, legacy message intact
        assert "rank 0" in str(ei.value)

    def test_cycles_found_in_report(self):
        def prog(rank, size):
            yield mpi.send(dest=(rank + 1) % size, nbytes=BIG)
            yield mpi.recv(source=(rank - 1) % size)

        # run under an (inert) fault plan so the watchdog builds a report
        plan = FaultPlan(message_loss=0.0, duplication=0.0, send_failure=0.0,
                         degradations=(LinkDegradation(1e8, 1e9),))
        with pytest.raises(DeadlockError) as ei:
            run(3, prog, faults=plan)
        report = ei.value.report
        cycles = report.cycles()
        assert len(cycles) == 1 and set(cycles[0]) == {0, 1, 2}
        assert "circular wait" in report.format()

    def test_no_spurious_cycle_from_dead_end_chain(self):
        # rank 1 waits only on crashed rank 0: no cycle must be reported
        plan = FaultPlan(crashes=(CrashFault(0, 0.0),))

        def prog(rank, size):
            if rank == 1:
                yield mpi.recv(source=0)

        with pytest.raises(DeadlockError) as ei:
            run(2, prog, faults=plan)
        assert ei.value.report.cycles() == []


class TestLossAndRetry:
    def test_loss_without_retry_drops_messages(self):
        plan = FaultPlan(seed=1, message_loss=0.6)
        with pytest.raises(DeadlockError) as ei:
            run(4, ring(iters=8), faults=plan)
        report = ei.value.report
        assert report.blocked  # receivers starve
        assert any(w.state == "recv" for w in report.blocked)

    def test_retry_recovers_lost_messages(self):
        plan = FaultPlan(seed=1, message_loss=0.3)
        res = run(4, ring(iters=8), faults=plan, retry=RetryPolicy(max_attempts=12))
        assert res.stats.total_retries > 0
        assert res.stats.total_messages_lost == 0
        assert res.stats.any_faults
        assert "retries" in res.stats.summary()

    def test_backoff_charged_to_virtual_clock(self):
        plan = FaultPlan(seed=1, message_loss=0.3)
        clean = run(4, ring(iters=8))
        faulty = run(
            4, ring(iters=8), faults=plan,
            retry=RetryPolicy(max_attempts=12, backoff=1e-3),
        )
        assert faulty.elapsed > clean.elapsed

    def test_elapsed_monotone_in_loss_rate(self):
        """The acceptance curve: elapsed time grows with the loss rate."""
        retry = RetryPolicy(max_attempts=16, backoff=1e-4)
        elapsed = []
        for p in (0.0, 0.1, 0.25, 0.4):
            res = run(4, ring(iters=10), faults=FaultPlan(seed=5).with_loss(p),
                      retry=retry)
            elapsed.append(res.elapsed)
        assert elapsed == sorted(elapsed)
        assert elapsed[-1] > elapsed[0]

    def test_per_link_loss_overrides_global(self):
        # loss only on link 0->1; the 1->2 link is clean
        plan = FaultPlan(seed=2, link_loss=((0, 1, 1.0),))

        def prog(rank, size):
            if rank == 0:
                yield mpi.send(dest=1, nbytes=64)
            elif rank == 1:
                yield mpi.send(dest=2, nbytes=64)
                yield mpi.recv(source=0, timeout=1.0)
            else:
                yield mpi.recv(source=1)

        res = run(3, prog, faults=plan)
        assert res.stats.total_messages_lost == 1
        assert res.stats.total_timeouts == 1

    def test_same_seed_reproduces_exactly(self):
        plan = FaultPlan(seed=9, message_loss=0.3)
        retry = RetryPolicy(max_attempts=12)
        a = run(4, ring(iters=8), faults=plan, retry=retry)
        b = run(4, ring(iters=8), faults=plan, retry=retry)
        assert a.elapsed == b.elapsed
        assert a.stats.total_retries == b.stats.total_retries

    def test_different_seed_differs(self):
        retry = RetryPolicy(max_attempts=12)
        a = run(4, ring(iters=8), faults=FaultPlan(seed=1, message_loss=0.3), retry=retry)
        b = run(4, ring(iters=8), faults=FaultPlan(seed=2, message_loss=0.3), retry=retry)
        assert a.stats.total_retries != b.stats.total_retries or a.elapsed != b.elapsed


class TestDuplication:
    def test_duplicates_counted_and_discarded(self):
        plan = FaultPlan(seed=3, duplication=1.0)
        res = run(4, ring(iters=4), faults=plan)
        assert res.stats.total_duplicates == res.stats.total_messages
        # transport discards duplicates: matching is unaffected
        assert res.stats.total_messages == 4 * 4

    def test_duplicates_cost_receiver_time(self):
        clean = run(4, ring(iters=4))
        dup = run(4, ring(iters=4), faults=FaultPlan(seed=3, duplication=1.0))
        assert dup.elapsed >= clean.elapsed


class TestSendFailure:
    def test_exhausted_send_returns_sendfailed(self):
        plan = FaultPlan(seed=4, send_failure=1.0)
        seen = {}

        def prog(rank, size):
            if rank == 0:
                r = yield mpi.send(dest=1, nbytes=64)
                seen["result"] = r
            else:
                yield mpi.recv(source=0, timeout=1.0)

        res = run(2, prog, faults=plan, retry=RetryPolicy(max_attempts=3))
        assert isinstance(seen["result"], SendFailed)
        assert seen["result"].retries == 2
        assert res.stats.total_send_failures == 1

    def test_retry_can_overcome_transient_failure(self):
        plan = FaultPlan(seed=4, send_failure=0.4)
        res = run(4, ring(iters=6), faults=plan, retry=RetryPolicy(max_attempts=16))
        assert res.stats.total_send_failures == 0
        assert res.stats.total_retries > 0


class TestDegradation:
    def test_degraded_window_slows_run(self):
        clean = run(4, ring(iters=6))
        plan = FaultPlan(
            degradations=(
                LinkDegradation(0.0, 1e6, latency_factor=50.0, bandwidth_factor=0.01),
            )
        )
        slow = run(4, ring(iters=6), faults=plan)
        assert slow.elapsed > clean.elapsed

    def test_window_outside_run_is_inert(self):
        clean = run(4, ring(iters=6))
        plan = FaultPlan(degradations=(LinkDegradation(1e8, 1e9, latency_factor=100.0),))
        res = run(4, ring(iters=6), faults=plan)
        assert res.elapsed == clean.elapsed

    def test_link_filter(self):
        d = LinkDegradation(0.0, 1.0, latency_factor=2.0, src=0, dst=1)
        assert d.applies(0, 1, 0.5)
        assert not d.applies(1, 0, 0.5)
        assert not d.applies(0, 1, 1.5)


class TestTimeouts:
    def test_recv_timeout_returns_timedout(self):
        seen = {}

        def prog(rank, size):
            if rank == 0:
                r = yield mpi.recv(source=1, timeout=0.5)
                seen["result"] = r

        res = run(2, prog)
        assert isinstance(seen["result"], TimedOut)
        assert seen["result"].op == "recv"
        assert seen["result"].now == pytest.approx(0.5)
        assert res.stats.total_timeouts == 1

    def test_rendezvous_send_timeout(self):
        seen = {}

        def prog(rank, size):
            if rank == 0:
                r = yield mpi.send(dest=1, nbytes=BIG, timeout=0.25)
                seen["result"] = r

        run(2, prog)
        assert isinstance(seen["result"], TimedOut)
        assert seen["result"].op == "send"

    def test_timeout_not_fired_when_matched(self):
        def prog(rank, size):
            if rank == 0:
                yield mpi.send(dest=1, nbytes=64)
            else:
                m = yield mpi.recv(source=0, timeout=10.0)
                assert not isinstance(m, TimedOut)

        res = run(2, prog)
        assert res.stats.total_timeouts == 0

    def test_irecv_timeout_via_wait(self):
        seen = {}

        def prog(rank, size):
            if rank == 0:
                h = yield mpi.irecv(source=1, timeout=0.5)
                r = yield mpi.waitall(h)
                seen["result"] = r

        run(2, prog)
        assert isinstance(seen["result"][0], TimedOut)

    def test_default_timeout_applies(self):
        seen = {}

        def prog(rank, size):
            if rank == 0:
                r = yield mpi.recv(source=1)
                seen["result"] = r

        res = run(2, prog, default_timeout=0.75)
        assert isinstance(seen["result"], TimedOut)
        assert res.stats.total_timeouts == 1

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError):
            mpi.recv(source=0, timeout=-1.0)
        with pytest.raises(ValueError):
            mpi.send(dest=0, nbytes=8, timeout=float("inf"))
        with pytest.raises(ValueError, match="default_timeout"):
            Simulator(2, ring(), M, default_timeout=0.0)
