"""Tests for trace persistence and measurement statistics."""

import pytest

from repro import mpi
from repro.machine import TESTING_MACHINE, IBM_SP
from repro.parallel import simulate_host_execution
from repro.sim import ExecMode, Simulator, load_trace, save_trace


def traced(nprocs, factory):
    return Simulator(nprocs, factory, TESTING_MACHINE, mode=ExecMode.DE, collect_trace=True).run()


class TestTraceIO:
    def _prog(self, rank, size):
        yield mpi.compute(ops=100 * (rank + 1))
        h = yield mpi.isend(dest=(rank + 1) % size, nbytes=64)
        g = yield mpi.irecv(source=(rank - 1) % size)
        yield mpi.waitall(h, g)
        yield mpi.barrier()

    def test_roundtrip_identical(self, tmp_path):
        res = traced(4, self._prog)
        path = tmp_path / "run.trace.jsonl"
        save_trace(res.trace, path)
        loaded = load_trace(path)
        assert loaded.nprocs == res.trace.nprocs
        assert loaded.events == res.trace.events

    def test_host_model_on_loaded_trace(self, tmp_path):
        res = traced(4, self._prog)
        path = tmp_path / "run.trace.jsonl"
        save_trace(res.trace, path)
        a = simulate_host_execution(res.trace, 2, TESTING_MACHINE)
        b = simulate_host_execution(load_trace(path), 2, TESTING_MACHINE)
        assert a.wall_time == b.wall_time

    def test_bad_format(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": 99, "nprocs": 1, "events": 0}\n')
        with pytest.raises(ValueError, match="unsupported"):
            load_trace(path)

    def test_truncation_detected(self, tmp_path):
        res = traced(2, self._prog)
        path = tmp_path / "run.jsonl"
        save_trace(res.trace, path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-2]) + "\n")
        with pytest.raises(ValueError, match="truncated"):
            load_trace(path)


class TestRateStats:
    def test_stats_from_measurement(self):
        from repro.apps import build_tomcatv, tomcatv_inputs
        from repro.codegen import generate_instrumented
        from repro.ir import MeasurementCollector, make_factory

        coll = MeasurementCollector()
        instr = generate_instrumented(build_tomcatv())
        factory = make_factory(instr, tomcatv_inputs(64, itmax=4), collector=coll)
        Simulator(4, factory, IBM_SP, mode=ExecMode.MEASURED, seed=3).run()
        mean, std, n = coll.rate_stats("residual")
        assert n == 4 * 4  # ranks x iterations
        assert mean == pytest.approx(coll.w("residual"), rel=0.05)
        assert std > 0  # ground-truth noise shows up in the spread
        assert std / mean < 0.2

    def test_no_samples_raises(self):
        from repro.ir import InterpreterError, MeasurementCollector

        with pytest.raises(InterpreterError, match="no paired samples"):
            MeasurementCollector().rate_stats("ghost")

    def test_single_sample_zero_std(self):
        from repro.ir import MeasurementCollector

        c = MeasurementCollector()
        c.record_work("t", 100)
        c.record_elapsed("t", 0.5)
        mean, std, n = c.rate_stats("t")
        assert (mean, std, n) == (pytest.approx(0.005), 0.0, 1)
