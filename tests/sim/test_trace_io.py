"""Tests for trace persistence and measurement statistics."""

import gzip

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import mpi
from repro.machine import TESTING_MACHINE, IBM_SP
from repro.parallel import simulate_host_execution
from repro.sim import ExecMode, Simulator, load_trace, save_trace
from repro.sim.trace import Trace, TraceEvent


def traced(nprocs, factory):
    return Simulator(nprocs, factory, TESTING_MACHINE, mode=ExecMode.DE, collect_trace=True).run()


class TestTraceIO:
    def _prog(self, rank, size):
        yield mpi.compute(ops=100 * (rank + 1))
        h = yield mpi.isend(dest=(rank + 1) % size, nbytes=64)
        g = yield mpi.irecv(source=(rank - 1) % size)
        yield mpi.waitall(h, g)
        yield mpi.barrier()

    def test_roundtrip_identical(self, tmp_path):
        res = traced(4, self._prog)
        path = tmp_path / "run.trace.jsonl"
        save_trace(res.trace, path)
        loaded = load_trace(path)
        assert loaded.nprocs == res.trace.nprocs
        assert loaded.events == res.trace.events

    def test_host_model_on_loaded_trace(self, tmp_path):
        res = traced(4, self._prog)
        path = tmp_path / "run.trace.jsonl"
        save_trace(res.trace, path)
        a = simulate_host_execution(res.trace, 2, TESTING_MACHINE)
        b = simulate_host_execution(load_trace(path), 2, TESTING_MACHINE)
        assert a.wall_time == b.wall_time

    def test_bad_format(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": 99, "nprocs": 1, "events": 0}\n')
        with pytest.raises(ValueError, match="unsupported"):
            load_trace(path)

    def test_truncation_detected(self, tmp_path):
        res = traced(2, self._prog)
        path = tmp_path / "run.jsonl"
        save_trace(res.trace, path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-2]) + "\n")
        with pytest.raises(ValueError, match="truncated"):
            load_trace(path)

    def test_gzip_roundtrip(self, tmp_path):
        res = traced(4, self._prog)
        path = tmp_path / "run.trace.jsonl.gz"
        save_trace(res.trace, path)
        # really gzip on disk, and meaningfully smaller than the plain form
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        plain = tmp_path / "run.trace.jsonl"
        save_trace(res.trace, plain)
        assert path.stat().st_size < plain.stat().st_size
        loaded = load_trace(path)
        assert loaded.nprocs == res.trace.nprocs
        assert loaded.events == res.trace.events

    def test_malformed_header_names_line_one(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match=rf"{path.name}:1: malformed trace header"):
            load_trace(path)

    def test_malformed_event_line_numbered(self, tmp_path):
        res = traced(2, self._prog)
        path = tmp_path / "run.jsonl"
        save_trace(res.trace, path)
        lines = path.read_text().splitlines()
        lines[3] = "[1, 2, oops"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=rf"{path.name}:4: malformed trace line"):
            load_trace(path)

    def test_wrong_field_count_numbered(self, tmp_path):
        res = traced(2, self._prog)
        path = tmp_path / "run.jsonl"
        save_trace(res.trace, path)
        lines = path.read_text().splitlines()
        lines[2] = "[1, 2, 3]"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=rf"{path.name}:3: .*expected 10 fields"):
            load_trace(path)

    def test_noncontiguous_eid_numbered(self, tmp_path):
        res = traced(2, self._prog)
        path = tmp_path / "run.jsonl"
        save_trace(res.trace, path)
        lines = path.read_text().splitlines()
        del lines[2]  # drop event 1: eids jump from 0 to 2
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=rf"{path.name}:3: event ids not contiguous"):
            load_trace(path)

    def test_gzip_errors_also_numbered(self, tmp_path):
        path = tmp_path / "bad.jsonl.gz"
        with gzip.open(path, "wt") as fh:
            fh.write('{"format": 1, "nprocs": 1, "events": 1}\n')
            fh.write("garbage\n")
        with pytest.raises(ValueError, match=rf"{path.name}:2: malformed trace line"):
            load_trace(path)


_KINDS = ("compute", "delay", "send", "recv", "wait", "collective")


@st.composite
def traces(draw):
    """Arbitrary well-formed traces: contiguous eids, deps on earlier events."""
    nprocs = draw(st.integers(min_value=1, max_value=5))
    n = draw(st.integers(min_value=0, max_value=12))
    events = []
    for eid in range(n):
        start = draw(st.floats(min_value=0, max_value=1e3, allow_nan=False))
        dur = draw(st.floats(min_value=0, max_value=10, allow_nan=False))
        deps = draw(
            st.lists(st.integers(min_value=0, max_value=eid - 1), unique=True)
            if eid else st.just([])
        )
        events.append(
            TraceEvent(
                eid=eid,
                proc=draw(st.integers(min_value=0, max_value=nprocs - 1)),
                kind=draw(st.sampled_from(_KINDS)),
                start=start,
                end=start + dur,
                host_cost=draw(st.floats(min_value=0, max_value=1, allow_nan=False)),
                deps=tuple(sorted(deps)),
                coll_id=draw(st.none() | st.integers(min_value=0, max_value=3)),
                nbytes=draw(st.integers(min_value=0, max_value=1 << 20)),
                nonblocking=draw(st.booleans()),
            )
        )
    return Trace(nprocs=nprocs, events=events)


class TestTraceRoundtripProperties:
    @given(trace=traces(), compress=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_save_load_identity(self, tmp_path_factory, trace, compress):
        path = tmp_path_factory.mktemp("trace") / (
            "t.jsonl.gz" if compress else "t.jsonl"
        )
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.nprocs == trace.nprocs
        assert loaded.events == trace.events


class TestRateStats:
    def test_stats_from_measurement(self):
        from repro.apps import build_tomcatv, tomcatv_inputs
        from repro.codegen import generate_instrumented
        from repro.ir import MeasurementCollector, make_factory

        coll = MeasurementCollector()
        instr = generate_instrumented(build_tomcatv())
        factory = make_factory(instr, tomcatv_inputs(64, itmax=4), collector=coll)
        Simulator(4, factory, IBM_SP, mode=ExecMode.MEASURED, seed=3).run()
        mean, std, n = coll.rate_stats("residual")
        assert n == 4 * 4  # ranks x iterations
        assert mean == pytest.approx(coll.w("residual"), rel=0.05)
        assert std > 0  # ground-truth noise shows up in the spread
        assert std / mean < 0.2

    def test_no_samples_raises(self):
        from repro.ir import InterpreterError, MeasurementCollector

        with pytest.raises(InterpreterError, match="no paired samples"):
            MeasurementCollector().rate_stats("ghost")

    def test_single_sample_zero_std(self):
        from repro.ir import MeasurementCollector

        c = MeasurementCollector()
        c.record_work("t", 100)
        c.record_elapsed("t", 0.5)
        mean, std, n = c.rate_stats("t")
        assert (mean, std, n) == (pytest.approx(0.005), 0.0, 1)
