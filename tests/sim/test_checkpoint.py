"""Replay-cursor checkpoints: file format, writer state machine, replay."""

import json

import pytest

from repro import mpi
from repro.machine import TESTING_MACHINE
from repro.sim import ExecMode, Simulator
from repro.sim.checkpoint import (
    CHECKPOINT,
    CheckpointError,
    CheckpointMismatchError,
    CheckpointWriter,
    RunCheckpoint,
    load_checkpoint,
)

M = TESTING_MACHINE


def run(nprocs, factory, **kw):
    return Simulator(nprocs, factory, M, mode=ExecMode.DE, **kw).run()


def ring_program(rank, size):
    for _ in range(4):
        yield mpi.compute(ops=100)
        yield mpi.send(dest=(rank + 1) % size, nbytes=64, tag=0)
        yield mpi.recv(source=(rank - 1) % size, tag=0)


def make_writer(path, **kw):
    w = CheckpointWriter()
    kw.setdefault("run_id", "r-1")
    kw.setdefault("config_hash", "h-1")
    kw.setdefault("seed", 0)
    kw.setdefault("min_interval_s", 0.0)
    w.configure(path, **kw)
    return w


@pytest.fixture(autouse=True)
def _quiet():
    CHECKPOINT.disable()
    yield
    CHECKPOINT.disable()


class TestFileFormat:
    def test_round_trip(self, tmp_path):
        ckpt = RunCheckpoint(
            run_id="r-1", config_hash="h-1", seed=3, events=100,
            virtual_time=1.25, wall_seconds=2.5,
            rng_state={"state": 1}, stats={"total_events": 100},
        )
        again = RunCheckpoint.from_json(json.loads(json.dumps(ckpt.to_json())))
        assert again == ckpt

    def test_from_json_rejects_bad_documents(self):
        with pytest.raises(CheckpointError, match="format"):
            RunCheckpoint.from_json({"format": 99})
        with pytest.raises(CheckpointError, match="corrupt"):
            RunCheckpoint.from_json({"format": 1, "run_id": "r"})

    def test_load_missing_or_corrupt_is_none(self, tmp_path):
        assert load_checkpoint(tmp_path / "nope.json") is None
        bad = tmp_path / "bad.json"
        bad.write_text("{torn")
        assert load_checkpoint(bad) is None
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"format": 99}))
        assert load_checkpoint(wrong) is None


class TestWriter:
    def test_enable_requires_configure(self):
        with pytest.raises(ValueError, match="configure"):
            CheckpointWriter().enable()

    def test_throttle_validation(self, tmp_path):
        w = CheckpointWriter()
        with pytest.raises(ValueError, match="interval_events"):
            w.configure(tmp_path / "c.json", run_id="r", config_hash="h",
                        seed=0, interval_events=0)

    def test_tick_writes_on_stride(self, tmp_path):
        path = tmp_path / "c.json"
        w = make_writer(path, interval_events=10)
        w.enable()
        for events in range(1, 25):
            w.tick(events, float(events))
        assert w.written == 2  # events 10 and 20
        ckpt = load_checkpoint(path)
        assert ckpt.events == 20 and ckpt.virtual_time == 20.0
        assert ckpt.run_id == "r-1" and ckpt.seed == 0

    def test_bound_providers_ride_the_checkpoint(self, tmp_path):
        path = tmp_path / "c.json"
        w = make_writer(path, interval_events=1)
        w.bind(lambda: {"total_events": 5}, lambda: {"bg": "pcg64"})
        w.enable()
        w.tick(1, 0.5)
        ckpt = load_checkpoint(path)
        assert ckpt.stats == {"total_events": 5}
        assert ckpt.rng_state == {"bg": "pcg64"}

    def test_clear_removes_the_file(self, tmp_path):
        path = tmp_path / "c.json"
        w = make_writer(path, interval_events=1)
        w.enable()
        w.tick(1, 0.0)
        assert path.exists()
        w.clear()
        assert not path.exists()
        w.clear()  # idempotent

    def test_configure_rejects_foreign_resume_cursor(self, tmp_path):
        cursor = RunCheckpoint(run_id="other", config_hash="h-1", seed=0,
                               events=5, virtual_time=1.0, wall_seconds=1.0)
        with pytest.raises(CheckpointError, match="different run"):
            make_writer(tmp_path / "c.json", resume_from=cursor)


class TestReplayVerification:
    def cursor(self, events=10, t=1.5, wall=4.0):
        return RunCheckpoint(run_id="r-1", config_hash="h-1", seed=0,
                             events=events, virtual_time=t, wall_seconds=wall)

    def test_matching_replay_clears_verification(self, tmp_path):
        w = make_writer(tmp_path / "c.json", interval_events=100,
                        resume_from=self.cursor())
        w.enable()
        assert w.verifying
        for events in range(1, 12):
            w.tick(events, 1.5 if events == 10 else 0.1 * events)
        assert not w.verifying

    def test_divergent_replay_raises_mismatch(self, tmp_path):
        w = make_writer(tmp_path / "c.json", interval_events=100,
                        resume_from=self.cursor(events=10, t=1.5))
        w.enable()
        with pytest.raises(CheckpointMismatchError, match="diverged"):
            w.tick(10, 1.5000001)

    def test_no_writes_during_replayed_prefix(self, tmp_path):
        """The on-disk cursor stays the high-water mark until verified."""
        path = tmp_path / "c.json"
        w = make_writer(path, interval_events=5,
                        resume_from=self.cursor(events=12, t=1.2))
        w.enable()
        for events in range(1, 12):
            w.tick(events, 0.1 * events)
        assert w.written == 0
        w.tick(12, 1.2)  # verified; stride resumes past the cursor
        for events in range(13, 20):
            w.tick(events, 0.1 * events)
        assert w.written >= 1
        assert load_checkpoint(path).events > 12

    def test_wall_credit_accumulates_across_attempts(self, tmp_path):
        path = tmp_path / "c.json"
        w = make_writer(path, interval_events=1,
                        resume_from=self.cursor(events=1, t=0.5, wall=40.0))
        w.enable()
        w.tick(1, 0.5)  # verify
        w.write(2, 0.6)
        assert load_checkpoint(path).wall_seconds >= 40.0


class TestEngineIntegration:
    def test_results_identical_with_checkpointing_armed(self, tmp_path):
        plain = run(3, ring_program, seed=7)
        path = tmp_path / "c.json"
        CHECKPOINT.configure(path, run_id="r-1", config_hash="h-1", seed=7,
                             interval_events=5, min_interval_s=0.0)
        CHECKPOINT.enable()
        try:
            checked = run(3, ring_program, seed=7)
        finally:
            CHECKPOINT.disable()
        assert checked.elapsed == plain.elapsed
        assert checked.stats.to_dict() == plain.stats.to_dict()
        ckpt = load_checkpoint(path)
        assert ckpt is not None and ckpt.events > 0
        assert ckpt.stats is not None  # engine binds its stats snapshot

    def test_real_cursor_replays_clean(self, tmp_path):
        """A cursor harvested from one run verifies on a re-run — the
        determinism contract that licenses replay-cursor resumption."""
        path = tmp_path / "c.json"
        CHECKPOINT.configure(path, run_id="r-1", config_hash="h-1", seed=7,
                             interval_events=5, min_interval_s=0.0)
        CHECKPOINT.enable()
        try:
            run(3, ring_program, seed=7)
        finally:
            CHECKPOINT.disable()
        cursor = load_checkpoint(path)
        CHECKPOINT.configure(path, run_id="r-1", config_hash="h-1", seed=7,
                             resume_from=cursor)
        CHECKPOINT.enable()
        try:
            run(3, ring_program, seed=7)  # raises on divergence
            assert not CHECKPOINT.verifying
        finally:
            CHECKPOINT.disable()

    def test_tampered_cursor_is_caught_on_replay(self, tmp_path):
        path = tmp_path / "c.json"
        CHECKPOINT.configure(path, run_id="r-1", config_hash="h-1", seed=7,
                             interval_events=5, min_interval_s=0.0)
        CHECKPOINT.enable()
        try:
            run(3, ring_program, seed=7)
        finally:
            CHECKPOINT.disable()
        good = load_checkpoint(path)
        bad = RunCheckpoint(
            run_id=good.run_id, config_hash=good.config_hash, seed=good.seed,
            events=good.events, virtual_time=good.virtual_time + 1.0,
            wall_seconds=good.wall_seconds,
        )
        CHECKPOINT.configure(path, run_id="r-1", config_hash="h-1", seed=7,
                             resume_from=bad)
        CHECKPOINT.enable()
        try:
            with pytest.raises(CheckpointMismatchError):
                run(3, ring_program, seed=7)
        finally:
            CHECKPOINT.disable()
