"""Unit tests for simulation statistics containers."""

import pytest

from repro import mpi
from repro.machine import TESTING_MACHINE
from repro.sim import ExecMode, SimStats, Simulator
from repro.sim.stats import ProcessStats


class TestSimStats:
    def test_empty(self):
        s = SimStats()
        assert s.nprocs == 0
        assert s.elapsed == 0.0
        assert s.total_messages == 0

    def test_aggregates(self):
        s = SimStats([
            ProcessStats(0, compute_time=1.0, comm_time=0.5, finish_time=2.0,
                         messages_sent=3, bytes_sent=300, events=10, host_cost=0.1),
            ProcessStats(1, compute_time=2.0, comm_time=0.25, finish_time=3.5,
                         messages_sent=1, bytes_sent=100, events=5, host_cost=0.2),
        ])
        assert s.nprocs == 2
        assert s.elapsed == 3.5
        assert s.total_messages == 4
        assert s.total_bytes == 400
        assert s.total_events == 15
        assert s.total_host_cost == pytest.approx(0.3)
        assert s.total_compute_time == pytest.approx(3.0)
        assert s.total_comm_time == pytest.approx(0.75)

    def test_summary_string(self):
        def prog(rank, size):
            yield mpi.send(dest=(rank + 1) % size, nbytes=8)
            yield mpi.recv(source=(rank - 1) % size)

        res = Simulator(2, prog, TESTING_MACHINE, mode=ExecMode.DE).run()
        text = res.stats.summary()
        assert "2 procs" in text and "msgs" in text and "events" in text


class TestToDict:
    def _stats(self):
        return SimStats([
            ProcessStats(0, compute_time=1.0, comm_time=0.5, finish_time=2.0,
                         messages_sent=3, bytes_sent=300, events=10, host_cost=0.1),
            ProcessStats(1, compute_time=2.0, comm_time=0.25, finish_time=3.5,
                         messages_sent=1, bytes_sent=100, events=5, host_cost=0.2,
                         retries=2, crashed=True, crash_time=3.5),
        ])

    def test_process_stats_flat_and_serializable(self):
        import json

        d = self._stats().procs[1].to_dict()
        assert d["rank"] == 1
        assert d["retries"] == 2
        assert d["crashed"] is True
        json.dumps(d)

    def test_simstats_aggregates_and_fault_counters(self):
        d = self._stats().to_dict()
        assert d["nprocs"] == 2
        assert d["elapsed"] == 3.5
        assert d["total_messages"] == 4
        assert d["total_retries"] == 2
        assert d["crashed_ranks"] == [1]
        assert "procs" not in d

    def test_include_procs_nests_rows(self):
        d = self._stats().to_dict(include_procs=True)
        assert [p["rank"] for p in d["procs"]] == [0, 1]
        assert d["procs"][0] == self._stats().procs[0].to_dict()


class TestTraceHelpers:
    def test_len_and_host_cost(self):
        def prog(rank, size):
            yield mpi.compute(ops=100)

        res = Simulator(
            3, prog, TESTING_MACHINE, mode=ExecMode.DE, collect_trace=True
        ).run()
        assert len(res.trace) == 3
        assert res.trace.total_host_cost() == pytest.approx(res.stats.total_host_cost)
