"""Heartbeat emitter: throttles, cursor shape, engine integration."""

import json

import pytest

from repro import mpi
from repro.machine import TESTING_MACHINE
from repro.sim import ExecMode, Simulator
from repro.sim.flightrec import FLIGHT
from repro.sim.heartbeat import CURSOR_FORMAT, HEARTBEAT, HeartbeatEmitter

M = TESTING_MACHINE


def run(nprocs, factory, **kw):
    return Simulator(nprocs, factory, M, mode=ExecMode.DE, **kw).run()


def ring_program(rank, size):
    for _ in range(4):
        yield mpi.compute(ops=100)
        yield mpi.send(dest=(rank + 1) % size, nbytes=64, tag=0)
        yield mpi.recv(source=(rank - 1) % size, tag=0)


@pytest.fixture(autouse=True)
def _quiet():
    """Every test starts and ends with the shared singletons disabled."""
    HEARTBEAT.disable()
    FLIGHT.disable()
    FLIGHT.reset()
    yield
    HEARTBEAT.disable()
    FLIGHT.disable()
    FLIGHT.reset()


class TestEmitter:
    def test_enable_requires_sink(self):
        hb = HeartbeatEmitter()
        with pytest.raises(ValueError, match="sink"):
            hb.enable()

    def test_throttle_validation(self):
        hb = HeartbeatEmitter()
        with pytest.raises(ValueError, match="interval_events"):
            hb.configure(lambda c: None, interval_events=0)
        with pytest.raises(ValueError, match="min_interval_s"):
            hb.configure(lambda c: None, min_interval_s=-1)

    def test_event_stride_gates_emission(self):
        got = []
        hb = HeartbeatEmitter()
        hb.configure(got.append, interval_events=10, min_interval_s=0.0)
        hb.enable()
        for events in range(1, 35):
            hb.tick(events, float(events))
        # due at events 10, 20, 30 (stride resets from the emission point)
        assert [c["events"] for c in got] == [10, 20, 30]
        assert hb.emitted == 3

    def test_cursor_shape_and_meta(self):
        got = []
        hb = HeartbeatEmitter()
        hb.configure(got.append, interval_events=1, min_interval_s=0.0,
                     run_id="r-1")
        hb.enable()
        hb.tick(1, 0.5)
        (cursor,) = got
        assert cursor["format"] == CURSOR_FORMAT
        assert cursor["events"] == 1
        assert cursor["virtual_time"] == 0.5
        assert cursor["wall_seconds"] >= 0.0
        assert cursor["run_id"] == "r-1"
        json.dumps(cursor)  # cursors must survive a pipe / journal

    def test_flight_tail_rides_cursor_when_armed(self):
        FLIGHT.enable()
        FLIGHT.record(1.0, 0, "send")
        FLIGHT.record(2.0, 1, "recv")
        got = []
        hb = HeartbeatEmitter()
        hb.configure(got.append, interval_events=1, min_interval_s=0.0)
        hb.enable()
        hb.tick(1, 2.0)
        assert got[0]["flight_tail"] == [[1.0, 0, "send"], [2.0, 1, "recv"]]

    def test_raising_sink_disables_emitter(self):
        def bad_sink(cursor):
            raise BrokenPipeError("parent died")

        hb = HeartbeatEmitter()
        hb.configure(bad_sink, interval_events=1, min_interval_s=0.0)
        hb.enable()
        hb.tick(1, 0.0)  # must not raise into the event loop
        assert not hb.enabled
        assert hb.emitted == 0

    def test_wall_throttle_suppresses_bursts(self):
        got = []
        hb = HeartbeatEmitter()
        hb.configure(got.append, interval_events=1, min_interval_s=3600.0)
        hb.enable()
        for events in range(1, 100):
            hb.tick(events, 0.0)
        assert got == []  # the hour has not elapsed


class TestEngineIntegration:
    def test_run_results_identical_with_heartbeats_armed(self):
        plain = run(3, ring_program, seed=7)
        got = []
        HEARTBEAT.configure(got.append, interval_events=1, min_interval_s=0.0)
        HEARTBEAT.enable()
        try:
            beating = run(3, ring_program, seed=7)
        finally:
            HEARTBEAT.disable()
        assert beating.elapsed == plain.elapsed
        assert beating.stats.to_dict() == plain.stats.to_dict()
        assert got, "the supervised drain must tick the emitter"
        # cursors advance monotonically in both coordinates
        events = [c["events"] for c in got]
        assert events == sorted(events)

    def test_disabled_run_never_consults_emitter(self):
        calls = []
        HEARTBEAT.configure(calls.append, interval_events=1, min_interval_s=0.0)
        assert not HEARTBEAT.enabled
        run(2, ring_program)
        assert calls == []
