"""Error-path tests for the simulation kernel (defensive behaviour)."""

import pytest

from repro import mpi
from repro.machine import TESTING_MACHINE
from repro.sim import (
    CollectiveMismatchError,
    ExecMode,
    Simulator,
)

M = TESTING_MACHINE


def run(nprocs, factory, **kw):
    return Simulator(nprocs, factory, M, mode=ExecMode.DE, **kw).run()


class TestBadRequests:
    def test_unknown_request_type(self):
        def prog(rank, size):
            yield "not-a-request"

        with pytest.raises(TypeError, match="unknown request"):
            run(1, prog)

    def test_negative_compute_rejected_at_construction(self):
        with pytest.raises(ValueError):
            mpi.compute(ops=-1)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            mpi.delay(-0.5)

    def test_negative_send_size_rejected(self):
        with pytest.raises(ValueError):
            mpi.send(dest=0, nbytes=-1)

    def test_negative_dest_rejected(self):
        with pytest.raises(ValueError):
            mpi.send(dest=-2, nbytes=8)

    def test_negative_collective_payload(self):
        with pytest.raises(ValueError):
            mpi.bcast(nbytes=-1)


class TestCollectiveMisuse:
    def test_root_mismatch(self):
        def prog(rank, size):
            yield mpi.bcast(nbytes=8, root=rank)  # different roots

        with pytest.raises(CollectiveMismatchError, match="root"):
            run(2, prog)

    def test_scatter_chunk_count_checked(self):
        def prog(rank, size):
            payload = ["a", "b"] if rank == 0 else None  # 2 chunks for 3 ranks
            yield mpi.scatter(nbytes=8, data=payload)

        with pytest.raises(CollectiveMismatchError, match="chunks"):
            run(3, prog)

    def test_reduce_with_data_needs_fn(self):
        def prog(rank, size):
            yield mpi.allreduce(nbytes=8, data=rank)  # no reduce_fn

        with pytest.raises(CollectiveMismatchError, match="reduce_fn"):
            run(2, prog)


class TestMemoryMisuse:
    def test_double_allocation(self):
        def prog(rank, size):
            yield mpi.alloc("A", 10)
            yield mpi.alloc("A", 10)

        with pytest.raises(ValueError, match="already allocated"):
            run(1, prog)

    def test_free_unknown(self):
        def prog(rank, size):
            yield mpi.free("ghost")

        with pytest.raises(ValueError, match="not allocated"):
            run(1, prog)


class TestSelfMessaging:
    def test_eager_self_send(self):
        """A rank may message itself (the multipartition P=1 case)."""

        def prog(rank, size):
            yield mpi.send(dest=rank, nbytes=8, data="me")
            m = yield mpi.recv(source=rank)
            assert m.data == "me"

        res = run(2, prog)
        assert res.stats.total_messages == 2

    def test_rendezvous_self_roundtrip_nonblocking(self):
        big = M.net.eager_limit * 2

        def prog(rank, size):
            h1 = yield mpi.irecv(source=rank, tag=1)
            h2 = yield mpi.isend(dest=rank, nbytes=big, tag=1)
            yield mpi.waitall(h1, h2)

        res = run(1, prog)
        assert res.stats.total_messages == 1


class TestExceptionPropagation:
    def test_program_exception_surfaces(self):
        def prog(rank, size):
            yield mpi.compute(ops=1)
            raise RuntimeError("app bug on rank %d" % rank)

        with pytest.raises(RuntimeError, match="app bug"):
            run(2, prog)

    def test_interpreter_error_surfaces(self):
        from repro.ir import InterpreterError, ProgramBuilder, make_factory
        from repro.ir.nodes import StopTimer

        b = ProgramBuilder("bad")
        prog = b.build()
        prog.body.append(StopTimer("never_started"))
        prog.number()
        with pytest.raises(InterpreterError):
            run(1, make_factory(prog, {}))
