"""Error-path tests for the simulation kernel (defensive behaviour)."""

import pytest

from repro import mpi
from repro.machine import TESTING_MACHINE
from repro.sim import (
    CollectiveMismatchError,
    ExecMode,
    Simulator,
)

M = TESTING_MACHINE


def run(nprocs, factory, **kw):
    return Simulator(nprocs, factory, M, mode=ExecMode.DE, **kw).run()


class TestBadRequests:
    def test_unknown_request_type(self):
        def prog(rank, size):
            yield "not-a-request"

        with pytest.raises(TypeError, match="unknown request"):
            run(1, prog)

    def test_negative_compute_rejected_at_construction(self):
        with pytest.raises(ValueError):
            mpi.compute(ops=-1)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            mpi.delay(-0.5)

    def test_negative_send_size_rejected(self):
        with pytest.raises(ValueError):
            mpi.send(dest=0, nbytes=-1)

    def test_negative_dest_rejected(self):
        with pytest.raises(ValueError):
            mpi.send(dest=-2, nbytes=8)

    def test_negative_collective_payload(self):
        with pytest.raises(ValueError):
            mpi.bcast(nbytes=-1)

    def test_negative_source_rejected(self):
        with pytest.raises(ValueError, match="source"):
            mpi.recv(source=-7)

    def test_negative_collective_root_rejected(self):
        with pytest.raises(ValueError, match="root"):
            mpi.bcast(nbytes=8, root=-1)

    def test_non_finite_compute_rejected(self):
        with pytest.raises(ValueError):
            mpi.compute(ops=float("nan"))
        with pytest.raises(ValueError):
            mpi.compute(ops=float("inf"))

    def test_non_finite_delay_rejected(self):
        with pytest.raises(ValueError):
            mpi.delay(float("inf"))

    def test_non_finite_send_size_rejected(self):
        with pytest.raises(ValueError):
            mpi.send(dest=0, nbytes=float("nan"))

    def test_send_to_rank_beyond_world(self):
        def prog(rank, size):
            yield mpi.send(dest=5, nbytes=8)

        with pytest.raises(ValueError, match="nonexistent rank 5"):
            run(2, prog)

    def test_recv_from_rank_beyond_world(self):
        def prog(rank, size):
            yield mpi.recv(source=9)

        with pytest.raises(ValueError, match="nonexistent rank 9"):
            run(2, prog)

    def test_collective_root_beyond_world(self):
        def prog(rank, size):
            yield mpi.bcast(nbytes=8, root=7)

        with pytest.raises(ValueError, match="root 7"):
            run(2, prog)


class TestCollectiveMisuse:
    def test_root_mismatch(self):
        def prog(rank, size):
            yield mpi.bcast(nbytes=8, root=rank)  # different roots

        with pytest.raises(CollectiveMismatchError, match="root"):
            run(2, prog)

    def test_scatter_chunk_count_checked(self):
        def prog(rank, size):
            payload = ["a", "b"] if rank == 0 else None  # 2 chunks for 3 ranks
            yield mpi.scatter(nbytes=8, data=payload)

        with pytest.raises(CollectiveMismatchError, match="chunks"):
            run(3, prog)

    def test_reduce_with_data_needs_fn(self):
        def prog(rank, size):
            yield mpi.allreduce(nbytes=8, data=rank)  # no reduce_fn

        with pytest.raises(CollectiveMismatchError, match="reduce_fn"):
            run(2, prog)

    def test_op_mismatch(self):
        def prog(rank, size):
            if rank == 0:
                yield mpi.bcast(nbytes=8)
            else:
                yield mpi.barrier()

        with pytest.raises(CollectiveMismatchError, match="others called"):
            run(2, prog)

    def test_uneven_call_counts_deadlock(self):
        def prog(rank, size):
            yield mpi.allreduce(nbytes=8)
            if rank == 0:
                yield mpi.allreduce(nbytes=8)  # nobody else joins

        from repro.sim import DeadlockError

        with pytest.raises(DeadlockError):
            run(2, prog)


class TestDeadlockDiagnosis:
    """Regression coverage for the deadlock watchdog (legacy + report)."""

    def test_lone_recv_names_rank_and_state(self):
        def prog(rank, size):
            if rank == 0:
                yield mpi.recv(source=1)

        from repro.sim import DeadlockError

        with pytest.raises(DeadlockError, match="rank 0") as ei:
            run(2, prog)
        report = ei.value.report
        assert report is not None
        assert report.blocked_ranks == (0,)
        assert report.blocked[0].state == "recv"
        assert report.unmatched_recvs[0][:2] == (0, 1)

    def test_collective_straggler_reported(self):
        def prog(rank, size):
            if rank != 2:
                yield mpi.barrier()

        from repro.sim import DeadlockError

        with pytest.raises(DeadlockError) as ei:
            run(3, prog)
        report = ei.value.report
        (straggler,) = report.stragglers
        op, _root, _members, arrived, missing = straggler
        assert op == "barrier"
        assert missing == (2,)
        assert set(arrived) == {0, 1}
        assert "collective stragglers" in report.format()

    def test_unconsumed_messages_still_reported(self):
        def prog(rank, size):
            if rank == 0:
                yield mpi.send(dest=1, nbytes=8)

        from repro.sim import DeadlockError

        with pytest.raises(DeadlockError, match="unconsumed"):
            run(2, prog)


class TestMemoryMisuse:
    def test_double_allocation(self):
        def prog(rank, size):
            yield mpi.alloc("A", 10)
            yield mpi.alloc("A", 10)

        with pytest.raises(ValueError, match="already allocated"):
            run(1, prog)

    def test_free_unknown(self):
        def prog(rank, size):
            yield mpi.free("ghost")

        with pytest.raises(ValueError, match="not allocated"):
            run(1, prog)


class TestSelfMessaging:
    def test_eager_self_send(self):
        """A rank may message itself (the multipartition P=1 case)."""

        def prog(rank, size):
            yield mpi.send(dest=rank, nbytes=8, data="me")
            m = yield mpi.recv(source=rank)
            assert m.data == "me"

        res = run(2, prog)
        assert res.stats.total_messages == 2

    def test_rendezvous_self_roundtrip_nonblocking(self):
        big = M.net.eager_limit * 2

        def prog(rank, size):
            h1 = yield mpi.irecv(source=rank, tag=1)
            h2 = yield mpi.isend(dest=rank, nbytes=big, tag=1)
            yield mpi.waitall(h1, h2)

        res = run(1, prog)
        assert res.stats.total_messages == 1


class TestExceptionPropagation:
    def test_program_exception_surfaces(self):
        def prog(rank, size):
            yield mpi.compute(ops=1)
            raise RuntimeError("app bug on rank %d" % rank)

        with pytest.raises(RuntimeError, match="app bug"):
            run(2, prog)

    def test_interpreter_error_surfaces(self):
        from repro.ir import InterpreterError, ProgramBuilder, make_factory
        from repro.ir.nodes import StopTimer

        b = ProgramBuilder("bad")
        prog = b.build()
        prog.body.append(StopTimer("never_started"))
        prog.number()
        with pytest.raises(InterpreterError):
            run(1, make_factory(prog, {}))
