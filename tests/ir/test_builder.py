"""Unit tests for the IR builder and program validation."""

import pytest

from repro.ir import (
    CompBlock,
    For,
    If,
    IRValidationError,
    P,
    ProgramBuilder,
    myid,
    walk,
)
from repro.symbolic import Gt, Lt, Var, ceil_div

N = Var("N")


def shift_program():
    """The paper's Fig. 1(a) example: a shift + loop nest."""
    b = ProgramBuilder("shift", params=("N",))
    b.array("A", size=N * ceil_div(N, P))
    b.array("D", size=N * ceil_div(N, P))
    b.assign("b", ceil_div(N, P))
    with b.if_(Gt(myid, 0)):
        b.send(dest=myid - 1, nbytes=(N - 2) * 8, array="D")
    with b.if_(Lt(myid, P - 1)):
        b.recv(source=myid + 1, nbytes=(N - 2) * 8, array="D")
    from repro.symbolic import Max, Min

    work = (N - 2) * (Min.make(N, myid * Var("b") + Var("b")) - Max.make(2, myid * Var("b") + 1))
    b.compute("loop_nest", work=work, ops_per_iter=2, arrays=("A", "D"))
    return b.build()


class TestBuilder:
    def test_builds_and_numbers(self):
        prog = shift_program()
        sids = [s.sid for s in walk(prog.body)]
        assert sids == sorted(sids) and len(set(sids)) == len(sids)

    def test_structure(self):
        prog = shift_program()
        kinds = [type(s).__name__ for s in prog.body]
        assert kinds == ["Assign", "If", "If", "CompBlock"]

    def test_nested_loop(self):
        b = ProgramBuilder("loops", params=("N",))
        with b.loop("i", 1, N):
            with b.loop("j", 1, Var("i")):
                b.compute("inner", work=1)
        prog = b.build()
        outer = prog.body[0]
        assert isinstance(outer, For) and isinstance(outer.body[0], For)

    def test_else_arm(self):
        b = ProgramBuilder("br")
        with b.if_(Gt(myid, 0)):
            b.compute("a", work=1)
        with b.else_():
            b.compute("z", work=2)
        prog = b.build()
        branch = prog.body[0]
        assert isinstance(branch, If)
        assert branch.then[0].name == "a" and branch.orelse[0].name == "z"

    def test_else_without_if_rejected(self):
        b = ProgramBuilder("bad")
        with pytest.raises(ValueError, match="must immediately follow"):
            with b.else_():
                pass

    def test_double_else_rejected(self):
        b = ProgramBuilder("bad")
        with b.if_(Gt(myid, 0)):
            pass
        with b.else_():
            pass
        with pytest.raises(ValueError, match="already has"):
            with b.else_():
                pass

    def test_duplicate_array_rejected(self):
        b = ProgramBuilder("dup")
        b.array("A", size=10)
        with pytest.raises(ValueError, match="declared twice"):
            b.array("A", size=20)

    def test_double_build_rejected(self):
        b = ProgramBuilder("x")
        b.build()
        with pytest.raises(RuntimeError):
            b.build()

    def test_meta(self):
        b = ProgramBuilder("m")
        b.meta(eliminate_branches={3: 0.1})
        prog = b.build()
        assert prog.meta["eliminate_branches"] == {3: 0.1}


class TestValidation:
    def test_undefined_variable_rejected(self):
        b = ProgramBuilder("bad", params=())
        b.assign("x", Var("unknown") + 1)
        with pytest.raises(IRValidationError, match="unknown"):
            b.build()

    def test_param_is_defined(self):
        b = ProgramBuilder("ok", params=("N",))
        b.assign("x", N + 1)
        b.build()  # should not raise

    def test_builtins_defined(self):
        b = ProgramBuilder("ok")
        b.assign("x", myid + P)
        b.build()

    def test_loop_var_scoped(self):
        b = ProgramBuilder("ok", params=("N",))
        with b.loop("i", 1, N):
            b.assign("x", Var("i") * 2)
        b.build()

    def test_undeclared_array_in_compute_rejected(self):
        b = ProgramBuilder("bad", params=("N",))
        b.compute("t", work=N, arrays=("GHOST",))
        with pytest.raises(IRValidationError, match="GHOST"):
            b.build()

    def test_var_defined_in_one_branch_only_rejected(self):
        b = ProgramBuilder("bad", params=("N",))
        with b.if_(Gt(myid, 0)):
            b.assign("x", N)
        b.assign("y", Var("x") + 1)
        with pytest.raises(IRValidationError, match="x"):
            b.build()

    def test_var_defined_in_both_branches_ok(self):
        b = ProgramBuilder("ok", params=("N",))
        with b.if_(Gt(myid, 0)):
            b.assign("x", N)
        with b.else_():
            b.assign("x", N * 2)
        b.assign("y", Var("x") + 1)
        b.build()


class TestProgramQueries:
    def test_comp_blocks(self):
        prog = shift_program()
        assert [c.name for c in prog.comp_blocks()] == ["loop_nest"]

    def test_comm_stmts(self):
        prog = shift_program()
        assert len(prog.comm_stmts()) == 2

    def test_find(self):
        prog = shift_program()
        block = prog.comp_blocks()[0]
        assert prog.find(block.sid) is block

    def test_find_missing(self):
        with pytest.raises(KeyError):
            shift_program().find(999)

    def test_reads_writes(self):
        prog = shift_program()
        assign = prog.body[0]
        assert assign.reads() == {"N", "P"}
        assert assign.writes() == {"b"}
        block = prog.comp_blocks()[0]
        assert "b" in block.reads() and "A" in block.reads()


class TestPrinter:
    def test_format_smoke(self):
        from repro.ir import format_program

        text = format_program(shift_program())
        assert "program shift" in text
        assert "SEND" in text and "RECV" in text
        assert "compute loop_nest" in text
        assert "if (" in text
