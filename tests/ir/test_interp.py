"""Integration tests: IR interpreter running on the simulation kernel."""

import numpy as np
import pytest

from repro.ir import (
    BranchProfile,
    InterpreterError,
    MeasurementCollector,
    ProgramBuilder,
    P,
    myid,
    make_factory,
)
from repro.ir.nodes import DelayStmt, ReadParams, StartTimer, StopTimer
from repro.machine import TESTING_MACHINE
from repro.sim import ExecMode, Simulator
from repro.symbolic import Gt, Lt, Var, ceil_div

N = Var("N")
M = TESTING_MACHINE


def run(prog, nprocs, inputs, mode=ExecMode.DE, **kw):
    factory = make_factory(prog, inputs, **kw)
    return Simulator(nprocs, factory, M, mode=mode).run()


def build_shift():
    """Paper Fig. 1(a): shift communication + computational loop nest."""
    b = ProgramBuilder("shift", params=("N",))
    b.array("A", size=N * ceil_div(N, P))
    b.array("D", size=N * ceil_div(N, P))
    b.assign("b", ceil_div(N, P))
    with b.if_(Gt(myid, 0)):
        b.send(dest=myid - 1, nbytes=(N - 2) * 8, array="D")
    with b.if_(Lt(myid, P - 1)):
        b.recv(source=myid + 1, nbytes=(N - 2) * 8, array="D")
    from repro.symbolic import Max, Min

    bvar = Var("b")
    work = (N - 2) * (Min.make(N, myid * bvar + bvar) - Max.make(2, myid * bvar + 1))
    b.compute("loop_nest", work=work, ops_per_iter=2, arrays=("A", "D"))
    return b.build()


class TestShiftExample:
    def test_runs_to_completion(self):
        res = run(build_shift(), 4, {"N": 100})
        assert res.elapsed > 0

    def test_message_pattern(self):
        res = run(build_shift(), 4, {"N": 100})
        # ranks 1..3 send, ranks 0..2 receive
        sent = [p.messages_sent for p in res.stats.procs]
        recvd = [p.messages_received for p in res.stats.procs]
        assert sent == [0, 1, 1, 1]
        assert recvd == [1, 1, 1, 0]

    def test_message_sizes(self):
        res = run(build_shift(), 4, {"N": 100})
        assert res.stats.total_bytes == 3 * (100 - 2) * 8

    def test_memory_accounting(self):
        res = run(build_shift(), 4, {"N": 100})
        per_rank = 2 * 100 * 25 * 8  # A and D: N * ceil(N/P) doubles
        assert res.memory.app_bytes == 4 * per_rank

    def test_compute_time_matches_model(self):
        res = run(build_shift(), 4, {"N": 100})
        # rank 3 computes (N-2) * (min(N, 4*25) - max(2, 76)) * 2 ops
        work = 98 * (100 - 76) * 2
        ws = 2 * 100 * 25 * 8
        from repro.machine import CpuModel

        expected = CpuModel(M.cpu).task_time(work, ws)
        assert res.stats.procs[3].compute_time == pytest.approx(expected)

    def test_single_process_no_comm(self):
        res = run(build_shift(), 1, {"N": 50})
        assert res.stats.total_messages == 0


class TestControlFlow:
    def test_loop_iterates(self):
        b = ProgramBuilder("loop", params=("K",))
        with b.loop("i", 1, Var("K")):
            b.compute("body", work=10)
        res = run(b.build(), 1, {"K": 5})
        assert res.stats.procs[0].compute_time == pytest.approx(5 * 10 * M.cpu.time_per_op)

    def test_empty_loop_body_never_runs(self):
        b = ProgramBuilder("loop", params=("K",))
        with b.loop("i", 5, Var("K")):
            b.compute("body", work=10)
        res = run(b.build(), 1, {"K": 2})
        assert res.stats.procs[0].compute_time == 0.0

    def test_loop_var_usable_in_body(self):
        b = ProgramBuilder("loop", params=("K",))
        with b.loop("i", 1, Var("K")):
            b.compute("body", work=Var("i"))
        res = run(b.build(), 1, {"K": 4})
        assert res.stats.procs[0].compute_time == pytest.approx((1 + 2 + 3 + 4) * M.cpu.time_per_op)

    def test_branch_profile_recorded(self):
        b = ProgramBuilder("br", params=("K",))
        with b.loop("i", 1, Var("K")):
            with b.if_(Gt(Var("i"), 7)):
                b.compute("big", work=100)
        prog = b.build()
        profile = BranchProfile()
        run(prog, 1, {"K": 10}, profile=profile)
        branch = prog.body[0].body[0]
        assert profile.probability(branch.sid) == pytest.approx(0.3)

    def test_profile_default_when_unobserved(self):
        assert BranchProfile().probability(42) == 0.5
        assert BranchProfile().probability(42, default=0.9) == 0.9

    def test_kernel_writes_drive_branches(self):
        """A CompBlock kernel sets a scalar that controls a branch."""

        def kern(env, arrays):
            env["flag"] = 1 if env["myid"] == 0 else 0

        b = ProgramBuilder("k")
        b.compute("detect", work=10, writes={"flag"}, kernel=kern)
        with b.if_(Gt(Var("flag"), 0)):
            b.compute("extra", work=1000)
        res = run(b.build(), 2, {})
        assert res.stats.procs[0].compute_time > res.stats.procs[1].compute_time


class TestCollectivesAndReductions:
    def test_allreduce_result_var(self):
        b = ProgramBuilder("red")
        b.assign("local", myid + 1)
        b.allreduce(nbytes=8, contrib=Var("local"), result_var="total")
        b.compute("post", work=Var("total"))
        res = run(b.build(), 4, {})
        # total = 1+2+3+4 = 10 on every rank
        assert all(
            p.compute_time == pytest.approx(10 * M.cpu.time_per_op) for p in res.stats.procs
        )

    def test_max_reduce(self):
        b = ProgramBuilder("red")
        b.assign("local", myid * 10)
        b.allreduce(nbytes=8, contrib=Var("local"), result_var="m", reduce_kind="max")
        b.compute("post", work=Var("m") + 1)
        res = run(b.build(), 3, {})
        assert res.stats.procs[0].compute_time == pytest.approx(21 * M.cpu.time_per_op)

    def test_barrier(self):
        b = ProgramBuilder("bar")
        b.compute("skew", work=myid * 1000)
        b.barrier()
        res = run(b.build(), 4, {})
        finishes = [p.finish_time for p in res.stats.procs]
        assert max(finishes) == pytest.approx(min(finishes))


class TestGeneratedStatements:
    def test_delay_stmt(self):
        b = ProgramBuilder("d")
        prog = b.build()
        prog.body.append(DelayStmt(Var("w_t") * 100, task="t"))
        prog.body.insert(0, ReadParams(("w_t",)))
        prog.number()
        res = run(prog, 2, {}, wparams={"w_t": 0.01})
        assert all(p.compute_time == pytest.approx(1.0) for p in res.stats.procs)

    def test_read_params_missing_raises(self):
        b = ProgramBuilder("d")
        prog = b.build()
        prog.body.append(ReadParams(("w_t",)))
        prog.number()
        with pytest.raises(InterpreterError, match="parameter file lacks"):
            run(prog, 1, {}, wparams={})

    def test_negative_delay_clamped(self):
        b = ProgramBuilder("d")
        prog = b.build()
        prog.body.insert(0, ReadParams(("w_t",)))
        prog.body.append(DelayStmt(Var("w_t") * -5, task="t"))
        prog.number()
        res = run(prog, 1, {}, wparams={"w_t": 1.0})
        assert res.stats.procs[0].compute_time == 0.0

    def test_timers_measure_task(self):
        b = ProgramBuilder("t")
        b.compute("task1", work=1000)
        prog = b.build()
        prog.body.insert(0, StartTimer("task1"))
        prog.body.append(StopTimer("task1"))
        prog.number()
        coll = MeasurementCollector()
        run(prog, 1, {}, collector=coll, mode=ExecMode.MEASURED)
        assert coll.samples("task1") == 1
        # w ~= time per work unit
        assert coll.w("task1") == pytest.approx(M.cpu.time_per_op, rel=0.01)

    def test_stop_without_start_raises(self):
        b = ProgramBuilder("t")
        prog = b.build()
        prog.body.append(StopTimer("x"))
        prog.number()
        with pytest.raises(InterpreterError, match="without timer_start"):
            run(prog, 1, {})


class TestErrors:
    def test_missing_input_rejected(self):
        with pytest.raises(InterpreterError, match="missing input"):
            make_factory(build_shift(), {})

    def test_collector_params(self):
        coll = MeasurementCollector()
        coll.record_work("t", 100)
        coll.record_elapsed("t", 0.5)
        assert coll.params() == {"w_t": pytest.approx(0.005)}

    def test_collector_no_work_raises(self):
        coll = MeasurementCollector()
        coll.record_elapsed("t", 0.5)
        with pytest.raises(InterpreterError, match="no work"):
            coll.w("t")

    def test_array_assign_kernel(self):
        got = {}

        def kern(env, arrays):
            arrays["cs"][:] = env["N"] // env["P"]
            got["ok"] = True

        b = ProgramBuilder("aa", params=("N",))
        b.array("cs", size=4, itemsize=8, materialize=True)
        b.array_assign("cs", kern, reads={"N"}, work=4)
        from repro.symbolic import Index

        b.compute("use", work=Index.make("cs", 0) * 10)
        res = run(b.build(), 2, {"N": 80})
        assert got["ok"]
        # cs[0] = 40 -> use does 400 ops; the ArrayAssign itself costs 4 ops
        assert res.stats.procs[0].compute_time == pytest.approx(404 * M.cpu.time_per_op)
