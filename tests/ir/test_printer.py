"""Tests for the IR pretty-printer (full statement coverage)."""

from repro.ir import ProgramBuilder, format_program, format_stmts, myid, P
from repro.ir.nodes import (
    AllocStmt,
    DelayStmt,
    ReadParams,
    StartTimer,
    StopTimer,
)
from repro.symbolic import Gt, Var


def full_program():
    N = Var("N")
    b = ProgramBuilder("printme", params=("N",))
    b.array("A", size=N, itemsize=8, materialize=True)
    b.array_assign("A", lambda e, a: None, reads={"N"}, work=N)
    b.assign("x", N + 1)
    with b.loop("i", 1, N):
        b.compute("body", work=N, ops_per_iter=3, arrays=("A",))
        with b.if_(Gt(myid, 0)):
            b.send(dest=myid - 1, nbytes=8, tag=2, array="A")
        with b.else_():
            b.recv(source=myid + 1, nbytes=8, tag=2)
    b.isend(dest=(myid + 1) % P, nbytes=16, tag=3, handle="h1")
    b.irecv(source=(myid - 1 + P) % P, nbytes=16, tag=3, handle="h2")
    b.waitall("h1", "h2")
    b.allreduce(nbytes=8, contrib=Var("x"), result_var="total")
    return b.build()


class TestFormatProgram:
    def test_header_and_decls(self):
        text = format_program(full_program())
        assert text.startswith("program printme(N)")
        assert "array A[N] x8B, materialized" in text
        assert text.rstrip().endswith("end")

    def test_every_statement_rendered(self):
        text = format_program(full_program())
        for token in (
            "A[:] = kernel(N)",
            "x = N + 1",
            "do i = 1, N",
            "compute body: N iters x 3.0 ops on A",
            "SEND A(8 bytes) to myid - 1 tag 2",
            "RECV <none>(8 bytes) from myid + 1 tag 2",
            "else",
            "endif",
            "enddo",
            "h1 = ISEND",
            "h2 = IRECV",
            "call mpi_waitall(h1, h2)",
            "ALLREDUCE(8 bytes) -> total (sum)",
        ):
            assert token in text, f"missing: {token}"

    def test_generated_statements(self):
        stmts = [
            ReadParams(("w_a", "w_b")),
            AllocStmt("dummy_buf", Var("N") * 8),
            DelayStmt(Var("w_a") * Var("N"), task="T0"),
            StartTimer("a"),
            StopTimer("a"),
        ]
        lines = format_stmts(stmts)
        assert "call read_and_broadcast(w_a, w_b)" in lines[0]
        assert "allocate dummy_buf" in lines[1]
        assert "call delay(" in lines[2] and "T0" in lines[2]
        assert "timer_start('a')" in lines[3]
        assert "timer_stop('a')" in lines[4]

    def test_indentation_nesting(self):
        text = format_program(full_program())
        # the send inside if inside loop is indented three levels
        line = next(l for l in text.splitlines() if "SEND" in l)
        assert line.startswith("      ")

    def test_data_dependent_marker(self):
        b = ProgramBuilder("dd")
        with b.if_(Gt(myid, 0), data_dependent=True):
            b.compute("t", work=1)
        text = format_program(b.build())
        assert "[data-dependent]" in text

    def test_simplified_program_renders(self):
        from repro.apps import build_tomcatv
        from repro.codegen import compile_program

        text = format_program(compile_program(build_tomcatv()).simplified)
        assert "call read_and_broadcast" in text
        assert "call delay(" in text
        assert "dummy_buf" in text
