"""Shared test configuration: a per-test wall-clock ceiling.

A hung simulation (deadlock the watchdog misses, livelocked retry
storm) must fail the suite fast, not stall it.  CI installs
``pytest-timeout`` and every test gets a default ceiling; in minimal
environments without the plugin, a ``SIGALRM`` fallback enforces the
same ceiling, so the guarantee holds everywhere the suite runs.
"""

import pytest

#: default per-test ceiling, seconds (CI passes the same via --timeout)
TEST_TIMEOUT_SECONDS = 120

try:
    import pytest_timeout  # noqa: F401

    _HAVE_PLUGIN = True
except ImportError:
    _HAVE_PLUGIN = False


if _HAVE_PLUGIN:

    def pytest_collection_modifyitems(config, items):
        """Apply the default ceiling to tests without their own marker."""
        for item in items:
            if item.get_closest_marker("timeout") is None:
                item.add_marker(pytest.mark.timeout(TEST_TIMEOUT_SECONDS))

else:
    import signal

    @pytest.hookimpl(wrapper=True)
    def pytest_runtest_call(item):
        if not hasattr(signal, "SIGALRM"):  # pragma: no cover - non-POSIX
            return (yield)

        def on_alarm(signum, frame):
            raise TimeoutError(
                f"test exceeded the {TEST_TIMEOUT_SECONDS}s ceiling "
                f"(install pytest-timeout for richer diagnostics)"
            )

        old = signal.signal(signal.SIGALRM, on_alarm)
        signal.alarm(TEST_TIMEOUT_SECONDS)
        try:
            return (yield)
        finally:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, old)
