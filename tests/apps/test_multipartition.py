"""Tests for the multipartitioned NAS SP variant."""

import pytest

from repro.apps import (
    build_nas_sp,
    build_nas_sp_multipartition,
    sp_inputs,
    sp_multi_inputs,
)
from repro.codegen import compile_program
from repro.ir import make_factory
from repro.machine import IBM_SP, TESTING_MACHINE
from repro.sim import ExecMode, Simulator


def run(prog, inputs, nprocs, machine=IBM_SP, mode=ExecMode.DE):
    return Simulator(nprocs, make_factory(prog, inputs), machine, mode=mode).run()


@pytest.fixture(scope="module")
def prog():
    return build_nas_sp_multipartition()


class TestStructure:
    def test_any_processor_count(self, prog):
        """Multipartitioning does not require square counts."""
        for p in (1, 3, 5, 7):
            res = run(prog, sp_multi_inputs("S", niter=1), p)
            assert res.elapsed > 0

    def test_inputs_helper(self):
        inputs = sp_multi_inputs("A", niter=2)
        assert inputs == {"nx": 64, "niter": 2}
        with pytest.raises(KeyError):
            sp_multi_inputs("Z")

    def test_ring_message_pattern(self, prog):
        """Per sweep phase: P-1 stages with one exchange each per proc,
        always to the same ring neighbour."""
        P = 4
        res = run(prog, sp_multi_inputs("S", niter=1), P)
        # copy_faces: 2 ring exchanges (2 msgs/proc) + 4 phases x (P-1) stages
        expected = P * 2 + 4 * (P - 1) * P
        assert res.stats.total_messages == expected

    def test_load_balance_is_perfect(self, prog):
        """Every processor computes at every stage: compute times equal."""
        res = run(prog, {"nx": 16, "niter": 2}, 4, machine=TESTING_MACHINE)
        times = {round(p.compute_time, 12) for p in res.stats.procs}
        assert len(times) == 1

    def test_no_pipeline_fill_bubbles(self, prog):
        """Utilization: comm-blocked time is a small share of elapsed on
        a compute-heavy configuration (unlike the 2-D grid pipeline)."""
        res = run(prog, {"nx": 36, "niter": 2}, 4)
        for p in res.stats.procs:
            assert p.comm_time < 0.35 * p.finish_time


class TestAgainstGridVersion:
    def test_multipartition_beats_grid_pipeline(self, prog):
        """The whole point of multipartitioning: at the same (nx, P) the
        diagonal decomposition outruns the line pipeline."""
        P = 16
        grid = run(build_nas_sp(), sp_inputs("A", P, niter=2), P)
        multi = run(prog, {"nx": 64, "niter": 2}, P)
        assert multi.elapsed < grid.elapsed

    def test_same_total_computation(self, prog):
        """Both decompositions do the same arithmetic (up to block
        rounding): total compute time within 20%."""
        P = 4
        grid = run(build_nas_sp(), sp_inputs("S", P, niter=1), P, machine=TESTING_MACHINE)
        multi = run(prog, {"nx": 12, "niter": 1}, P, machine=TESTING_MACHINE)
        ratio = multi.stats.total_compute_time / grid.stats.total_compute_time
        assert 0.8 < ratio < 1.25


class TestCompilation:
    def test_compiles_and_simplifies(self, prog):
        compiled = compile_program(prog)
        assert compiled.simplified.arrays == {}
        assert len(compiled.plan.regions) >= 3

    def test_am_accuracy(self, prog):
        from repro.workflow import ModelingWorkflow

        wf = ModelingWorkflow(
            prog, IBM_SP, calib_inputs=sp_multi_inputs("S", niter=2), calib_nprocs=4
        )
        wf.calibrate()
        inputs = sp_multi_inputs("W", niter=2)
        meas = wf.run_measured(inputs, 8)
        am = wf.run_am(inputs, 8)
        err = abs(am.elapsed - meas.elapsed) / meas.elapsed
        assert err < 0.17
