"""Tests for Tomcatv, NAS SP and SAMPLE application models."""

import pytest

from repro.apps import (
    SAMPLE_PATTERNS,
    build_nas_sp,
    build_sample,
    build_tomcatv,
    factor2d,
    sample_inputs_for_ratio,
    sp_inputs,
    square_side,
    tomcatv_inputs,
)
from repro.codegen import compile_program
from repro.ir import ArrayAssign, make_factory
from repro.machine import IBM_SP, ORIGIN_2000
from repro.sim import ExecMode, Simulator


def run(prog, inputs, nprocs, machine=IBM_SP, mode=ExecMode.DE, **kw):
    return Simulator(nprocs, make_factory(prog, inputs, **kw), machine, mode=mode).run()


class TestHelpers:
    def test_factor2d(self):
        assert factor2d(16) == (4, 4)
        assert factor2d(8) == (2, 4)
        assert factor2d(7) == (1, 7)
        assert factor2d(1) == (1, 1)

    def test_factor2d_invalid(self):
        with pytest.raises(ValueError):
            factor2d(0)

    def test_square_side(self):
        assert square_side(16) == 4
        with pytest.raises(ValueError, match="square"):
            square_side(8)


class TestTomcatv:
    @pytest.fixture(scope="class")
    def prog(self):
        return build_tomcatv()

    def test_message_pattern(self, prog):
        """Per iteration: each interior rank exchanges both ways, edge
        ranks one way -> 2*(P-1) messages per iteration."""
        inputs = tomcatv_inputs(64, itmax=3)
        res = run(prog, inputs, 4)
        assert res.stats.total_messages == 3 * 2 * (4 - 1)

    def test_allreduce_per_iteration(self, prog):
        inputs = tomcatv_inputs(64, itmax=5)
        res = run(prog, inputs, 4)
        assert all(p.collectives == 5 for p in res.stats.procs)

    def test_memory_is_seven_arrays(self, prog):
        inputs = tomcatv_inputs(128, itmax=1)
        res = run(prog, inputs, 4)
        per_rank = 7 * 128 * 32 * 8  # 7 arrays of n*ceil(n/P) doubles
        assert res.memory.app_bytes == 4 * per_rank

    def test_simplified_eliminates_everything(self, prog):
        compiled = compile_program(prog)
        assert compiled.simplified.arrays == {}
        assert len(compiled.plan.regions) >= 1

    def test_load_balance(self, prog):
        """With n divisible by P, per-rank compute times are equal."""
        inputs = tomcatv_inputs(64, itmax=2)
        res = run(prog, inputs, 4)
        times = [p.compute_time for p in res.stats.procs]
        assert max(times) == pytest.approx(min(times))


class TestNasSP:
    @pytest.fixture(scope="class")
    def prog(self):
        return build_nas_sp()

    def test_class_inputs(self):
        inputs = sp_inputs("A", 16)
        assert inputs["nx"] == 64 and inputs["q"] == 4

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            sp_inputs("A", 8)

    def test_unknown_class(self):
        with pytest.raises(KeyError):
            sp_inputs("Z", 4)

    def test_runs_small(self, prog):
        res = run(prog, sp_inputs("S", 4, niter=2), 4)
        assert res.elapsed > 0
        assert res.stats.total_messages > 0

    def test_cell_size_array_retained_in_simplified(self, prog):
        """The paper's Sec. 3.3 feature: cell_size arrays feed loop
        bounds, so the slicer must keep them (and their producers)."""
        compiled = compile_program(prog)
        assert "cell_size_x" in compiled.simplified.arrays
        assert "cell_size_y" in compiled.simplified.arrays
        aa = [s for s in compiled.simplified.statements() if isinstance(s, ArrayAssign)]
        assert {a.array for a in aa} == {"cell_size_x", "cell_size_y"}

    def test_big_arrays_eliminated(self, prog):
        compiled = compile_program(prog)
        assert "u" not in compiled.simplified.arrays
        assert "rhs" not in compiled.simplified.arrays

    def test_uneven_cell_sizes(self, prog):
        """nx not divisible by q: ranks get different work via cell_size."""
        res = run(prog, {"nx": 13, "q": 2, "niter": 1}, 4)
        times = {round(p.compute_time, 9) for p in res.stats.procs}
        assert len(times) > 1

    def test_memory_reduction_factor_smaller_than_tomcatv(self, prog):
        """SP must retain its cell_size machinery, so (as in Table 1) its
        reduction factor is smaller than Tomcatv's."""
        sp_c = compile_program(prog)
        sp_inputs_ = sp_inputs("S", 4, niter=1)
        de = run(prog, sp_inputs_, 4)
        am = run(sp_c.simplified, sp_inputs_, 4, wparams={w: 1e-7 for w in sp_c.w_param_names})
        sp_factor = de.memory.app_bytes / am.memory.app_bytes

        tom = build_tomcatv()
        tom_c = compile_program(tom)
        ti = tomcatv_inputs(48, itmax=1)
        tde = run(tom, ti, 4)
        tam = run(tom_c.simplified, ti, 4, wparams={w: 1e-7 for w in tom_c.w_param_names})
        tom_factor = tde.memory.app_bytes / tam.memory.app_bytes
        assert sp_factor < tom_factor


class TestSample:
    @pytest.mark.parametrize("pattern", SAMPLE_PATTERNS)
    def test_builds_and_runs(self, pattern):
        prog = build_sample(pattern)
        inputs = sample_inputs_for_ratio(0.01, ORIGIN_2000, iters=5)
        res = run(prog, inputs, 4, machine=ORIGIN_2000)
        assert res.elapsed > 0

    def test_unknown_pattern(self):
        with pytest.raises(ValueError):
            build_sample("ring")

    def test_ratio_controls_grain(self):
        lo = sample_inputs_for_ratio(0.0001, ORIGIN_2000)
        hi = sample_inputs_for_ratio(1.0, ORIGIN_2000)
        assert lo["grain"] > hi["grain"] * 100

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            sample_inputs_for_ratio(0, ORIGIN_2000)

    def test_wavefront_pipelines(self):
        prog = build_sample("wavefront")
        inputs = sample_inputs_for_ratio(1.0, ORIGIN_2000, iters=1)
        res = run(prog, inputs, 4, machine=ORIGIN_2000)
        finishes = [p.finish_time for p in res.stats.procs]
        assert finishes == sorted(finishes)  # each rank finishes after its left

    def test_nn_symmetric(self):
        prog = build_sample("nearest_neighbor")
        inputs = sample_inputs_for_ratio(0.1, ORIGIN_2000, iters=4)
        res = run(prog, inputs, 4, machine=ORIGIN_2000)
        # interior ranks exchange both ways
        assert res.stats.procs[1].messages_sent == 2 * 4
        assert res.stats.procs[0].messages_sent == 1 * 4

    def test_comm_to_comp_ratio_realized(self):
        """The realized ratio tracks the requested one within 2x."""
        prog = build_sample("nearest_neighbor")
        for target in (0.001, 0.1):
            inputs = sample_inputs_for_ratio(target, ORIGIN_2000, iters=4)
            res = run(prog, inputs, 2, machine=ORIGIN_2000)
            p = res.stats.procs[0]
            realized = p.comm_time / p.compute_time
            assert realized / target < 10 and target / realized < 10
