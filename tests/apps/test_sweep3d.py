"""Tests for the Sweep3D application model."""

import pytest

from repro.apps import sweep3d_inputs, sweep3d_per_proc_inputs
from repro.apps.sweep3d import FIXUP_PROBABILITY, build_sweep3d
from repro.codegen import compile_program
from repro.ir import BranchProfile, CompBlock, DelayStmt, make_factory
from repro.machine import TESTING_MACHINE, IBM_SP
from repro.sim import ExecMode, Simulator


@pytest.fixture(scope="module")
def prog():
    return build_sweep3d()


def run(prog, inputs, nprocs, machine=IBM_SP, mode=ExecMode.DE, **kw):
    return Simulator(nprocs, make_factory(prog, inputs, **kw), machine, mode=mode).run()


class TestStructure:
    def test_builds_and_validates(self, prog):
        assert prog.name == "sweep3d"
        assert len(prog.comp_blocks()) == 3  # sweep_stage, flux_fixup, flux_norm

    def test_fixup_branch_is_data_dependent(self, prog):
        from repro.ir import If, walk

        dd = [s for s in walk(prog.body) if isinstance(s, If) and s.data_dependent]
        assert len(dd) == 1

    def test_inputs_helper_factorizes(self):
        inputs = sweep3d_inputs(150, 150, 150, 8)
        assert inputs["px"] * inputs["py"] == 8

    def test_per_proc_inputs_scale_grid(self):
        inputs = sweep3d_per_proc_inputs(4, 4, 255, 16)
        assert inputs["itg"] == 4 * inputs["px"]
        assert inputs["jtg"] == 4 * inputs["py"]


class TestExecution:
    def test_pipeline_message_count(self, prog):
        """Each octant sweep sends one i-message per interior i-edge and
        one j-message per interior j-edge, per (angle-block × k-block)."""
        inputs = sweep3d_inputs(16, 16, 16, 4, kb=2, ab=1, niter=1)
        res = run(prog, inputs, 4)
        px, py = inputs["px"], inputs["py"]
        stages = 8 * inputs["ab"] * inputs["kb"]
        i_msgs = stages * (px - 1) * py
        j_msgs = stages * px * (py - 1)
        assert res.stats.total_messages == i_msgs + j_msgs

    def test_wavefront_skew(self, prog):
        """Downstream corner ranks finish later than the origin corner in
        a single one-octant-dominated pipeline; with all 8 octants the
        finish times even out — so check the pipeline exists via comm time."""
        inputs = sweep3d_inputs(24, 24, 16, 4, kb=2, ab=1, niter=1)
        res = run(prog, inputs, 4)
        assert all(p.comm_time > 0 for p in res.stats.procs)

    def test_fixup_branch_fires_at_expected_rate(self, prog):
        inputs = sweep3d_inputs(16, 16, 16, 4, kb=3, ab=2, niter=2)
        profile = BranchProfile()
        run(prog, inputs, 4, profile=profile)
        from repro.ir import If, walk

        branch = next(s for s in walk(prog.body) if isinstance(s, If) and s.data_dependent)
        p = profile.probability(branch.sid)
        assert abs(p - FIXUP_PROBABILITY) < 0.15

    def test_deterministic_across_modes(self, prog):
        """DE control flow matches the measured run exactly (same message
        counts) because the fixup probe is deterministic."""
        inputs = sweep3d_inputs(16, 16, 16, 4, kb=2, ab=1, niter=1)
        de = run(prog, inputs, 4, mode=ExecMode.DE)
        meas = run(prog, inputs, 4, mode=ExecMode.MEASURED)
        assert de.stats.total_messages == meas.stats.total_messages
        assert de.stats.total_bytes == meas.stats.total_bytes

    def test_memory_scales_with_grid(self, prog):
        small = run(prog, sweep3d_inputs(12, 12, 8, 4, niter=1), 4)
        large = run(prog, sweep3d_inputs(24, 24, 8, 4, niter=1), 4)
        assert large.memory.app_bytes > 3 * small.memory.app_bytes


class TestCompilation:
    @pytest.fixture(scope="class")
    def compiled(self, prog):
        profile = BranchProfile()
        inputs = sweep3d_inputs(16, 16, 16, 4, kb=2, ab=1, niter=1)
        run(prog, inputs, 4, profile=profile)
        return compile_program(prog, profile=profile)

    def test_fixup_branch_eliminated(self, compiled):
        assert len(set(compiled.plan.eliminated_branches)) == 1

    def test_all_big_arrays_eliminated(self, compiled):
        assert compiled.simplified.arrays == {}

    def test_no_compute_blocks_remain(self, compiled):
        stmts = list(compiled.simplified.statements())
        assert not any(isinstance(s, CompBlock) for s in stmts)
        assert any(isinstance(s, DelayStmt) for s in stmts)

    def test_comm_structure_preserved(self, compiled, prog):
        inputs = sweep3d_inputs(16, 16, 16, 4, kb=2, ab=1, niter=1)
        de = run(prog, inputs, 4)
        am = run(compiled.simplified, inputs, 4, wparams={
            w: 1e-7 for w in compiled.w_param_names
        })
        assert am.stats.total_messages == de.stats.total_messages

    def test_am_accuracy_on_exact_machine(self, prog):
        """On the noise-free flat-cache machine, AM tracks ground truth to
        within a few percent despite the statistically eliminated fixup."""
        from repro.measure import measure_wparams

        inputs = sweep3d_inputs(16, 16, 16, 4, kb=2, ab=2, niter=2)
        cal = measure_wparams(prog, inputs, 4, TESTING_MACHINE)
        compiled = compile_program(prog, profile=cal.profile)
        am = run(compiled.simplified, inputs, 4, machine=TESTING_MACHINE, wparams=cal.wparams)
        meas = run(prog, inputs, 4, machine=TESTING_MACHINE, mode=ExecMode.MEASURED)
        err = abs(am.elapsed - meas.elapsed) / meas.elapsed
        assert err < 0.06
