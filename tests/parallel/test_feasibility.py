"""Tests for the memory-feasibility estimator."""

import pytest

from repro.apps import build_sweep3d, build_tomcatv, sweep3d_per_proc_inputs, tomcatv_inputs
from repro.codegen import compile_program
from repro.ir import make_factory
from repro.machine import IBM_SP, GiB, MiB
from repro.parallel import estimate_program_memory, max_feasible_procs
from repro.sim import ExecMode, Simulator


class TestEstimate:
    def test_matches_actual_run_tomcatv(self):
        """The static estimate agrees with the kernel's accounting."""
        prog = build_tomcatv()
        inputs = tomcatv_inputs(128, itmax=1)
        est = estimate_program_memory(prog, inputs, 4, IBM_SP.host)
        res = Simulator(4, make_factory(prog, inputs), IBM_SP, mode=ExecMode.DE).run()
        assert est == res.memory.total_bytes

    def test_matches_actual_run_simplified(self):
        """Dynamic (dummy-buffer) allocations are included."""
        prog = build_tomcatv()
        compiled = compile_program(prog)
        inputs = tomcatv_inputs(128, itmax=1)
        est = estimate_program_memory(compiled.simplified, inputs, 4, IBM_SP.host)
        w = {n: 1e-7 for n in compiled.w_param_names}
        res = Simulator(
            4, make_factory(compiled.simplified, inputs, wparams=w), IBM_SP, mode=ExecMode.AM
        ).run()
        assert est == res.memory.total_bytes

    def test_scales_linearly_in_procs_for_fixed_per_proc_size(self):
        prog = build_sweep3d()
        e16 = estimate_program_memory(prog, sweep3d_per_proc_inputs(4, 4, 64, 16), 16, IBM_SP.host)
        e64 = estimate_program_memory(prog, sweep3d_per_proc_inputs(4, 4, 64, 64), 64, IBM_SP.host)
        assert e64 == pytest.approx(4 * e16, rel=0.05)

    def test_invalid_procs(self):
        with pytest.raises(ValueError):
            estimate_program_memory(build_tomcatv(), tomcatv_inputs(8), 0, IBM_SP.host)


class TestMaxFeasible:
    def test_de_caps_before_am(self):
        """The Figs. 10/11 phenomenon: under the same budget, direct
        execution hits the memory wall at far fewer target processors
        than the compiler-optimized simulator."""
        prog = build_sweep3d()
        compiled = compile_program(prog)

        def inputs_for(nprocs):
            return sweep3d_per_proc_inputs(4, 4, 1024, nprocs)

        budget = 2 * GiB
        candidates = [16, 64, 256, 1024, 4096, 16384]
        de_max = max_feasible_procs(prog, inputs_for, budget, IBM_SP.host, candidates)
        am_max = max_feasible_procs(
            compiled.simplified, inputs_for, budget, IBM_SP.host, candidates
        )
        assert de_max is not None and am_max is not None
        assert am_max > de_max

    def test_none_when_nothing_fits(self):
        prog = build_tomcatv()

        def inputs_for(nprocs):
            return tomcatv_inputs(4096, itmax=1)

        assert max_feasible_procs(prog, inputs_for, 1 * MiB, IBM_SP.host, [4, 16]) is None
