"""Tests for the simulator host-performance model."""

import pytest

from repro import mpi
from repro.machine import IBM_SP
from repro.parallel import sequential_host_time, simulate_host_execution
from repro.sim import ExecMode, Simulator


def traced_run(nprocs, factory, machine=IBM_SP):
    return Simulator(nprocs, factory, machine, mode=ExecMode.DE, collect_trace=True).run()


def embarrassingly_parallel(rank, size):
    yield mpi.compute(ops=10**6)


def ring(rank, size):
    for _ in range(5):
        yield mpi.send(dest=(rank + 1) % size, nbytes=1024)
        yield mpi.recv(source=(rank - 1) % size)
        yield mpi.compute(ops=10**5)


class TestSequential:
    def test_single_host_equals_total_cost(self):
        res = traced_run(4, embarrassingly_parallel)
        est = simulate_host_execution(res.trace, 1, IBM_SP)
        assert est.wall_time == pytest.approx(res.stats.total_host_cost)
        assert est.sync_time == 0.0

    def test_sequential_helper(self):
        res = traced_run(4, embarrassingly_parallel)
        assert sequential_host_time(res.trace) == pytest.approx(res.stats.total_host_cost)


class TestParallelScaling:
    def test_perfect_scaling_without_communication(self):
        res = traced_run(8, embarrassingly_parallel)
        e1 = simulate_host_execution(res.trace, 1, IBM_SP)
        e8 = simulate_host_execution(res.trace, 8, IBM_SP)
        assert e1.wall_time / e8.wall_time == pytest.approx(8, rel=0.01)

    def test_more_hosts_never_slower_much(self):
        res = traced_run(8, ring)
        walls = [simulate_host_execution(res.trace, h, IBM_SP).wall_time for h in (1, 2, 4, 8)]
        # speedup is monotone-ish; communication sync limits it
        assert walls[1] < walls[0]
        assert walls[3] <= walls[1]

    def test_speedup_sublinear_with_communication(self):
        res = traced_run(8, ring)
        e1 = simulate_host_execution(res.trace, 1, IBM_SP)
        e8 = simulate_host_execution(res.trace, 8, IBM_SP)
        speedup = e1.wall_time / e8.wall_time
        assert 1.0 < speedup < 8.0

    def test_hosts_capped_at_procs(self):
        res = traced_run(2, embarrassingly_parallel)
        est = simulate_host_execution(res.trace, 64, IBM_SP)
        assert est.n_hosts == 2

    def test_invalid_hosts(self):
        res = traced_run(2, embarrassingly_parallel)
        with pytest.raises(ValueError):
            simulate_host_execution(res.trace, 0, IBM_SP)

    def test_efficiency_bounded(self):
        res = traced_run(8, ring)
        for h in (1, 2, 8):
            est = simulate_host_execution(res.trace, h, IBM_SP)
            assert 0.0 < est.efficiency <= 1.0 + 1e-9


class TestCollectiveHandling:
    def test_collective_synchronizes_hosts(self):
        def prog(rank, size):
            yield mpi.compute(ops=10**5 * (rank + 1))
            yield mpi.barrier()
            yield mpi.compute(ops=10**5)

        res = traced_run(4, prog)
        est = simulate_host_execution(res.trace, 4, IBM_SP)
        # wall must cover the slowest pre-barrier compute plus post work
        slowest = 4 * 10**5 * IBM_SP.cpu.time_per_op * IBM_SP.host.direct_exec_factor
        assert est.wall_time > slowest

    def test_empty_trace(self):
        from repro.sim.trace import Trace

        est = simulate_host_execution(Trace(nprocs=2), 2, IBM_SP)
        assert est.wall_time == 0.0 and est.events == 0


class TestAmVsDeHostCost:
    def test_am_cheaper_to_simulate_than_de(self):
        """The central performance claim: abstracting computation makes
        the simulator itself much faster (Figs. 12-13)."""
        from repro.apps import build_tomcatv, tomcatv_inputs
        from repro.workflow import ModelingWorkflow

        wf = ModelingWorkflow(
            build_tomcatv(), IBM_SP, calib_inputs=tomcatv_inputs(96, itmax=2), calib_nprocs=4
        )
        inputs = tomcatv_inputs(192, itmax=2)
        de = wf.run_de(inputs, 4, collect_trace=True)
        am = wf.run_am(inputs, 4, collect_trace=True)
        de_host = simulate_host_execution(de.trace, 4, IBM_SP).wall_time
        am_host = simulate_host_execution(am.trace, 4, IBM_SP).wall_time
        assert am_host < de_host / 5
