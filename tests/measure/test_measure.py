"""Tests for task-time measurement and parameter-file I/O."""

import pytest

from repro.apps import build_tomcatv, tomcatv_inputs
from repro.apps.tomcatv import STENCIL_OPS
from repro.machine import IBM_SP, TESTING_MACHINE
from repro.measure import load_params, measure_wparams, save_params


class TestCalibration:
    def test_measures_all_tasks(self):
        cal = measure_wparams(build_tomcatv(), tomcatv_inputs(64, itmax=2), 4, IBM_SP)
        assert set(cal.wparams) == {"w_residual", "w_tridiag_solve", "w_mesh_update"}
        assert cal.program == "tomcatv"
        assert cal.elapsed > 0

    def test_w_near_true_cost_on_exact_machine(self):
        """On the flat-cache noise-free machine with zero timer cost, the
        measured w equals ops_per_iter * time_per_op exactly."""
        cal = measure_wparams(build_tomcatv(), tomcatv_inputs(64, itmax=2), 4, TESTING_MACHINE)
        expected = STENCIL_OPS * TESTING_MACHINE.cpu.time_per_op
        assert cal.wparams["w_residual"] == pytest.approx(expected, rel=1e-9)

    def test_timer_overhead_inflates_w(self):
        """On the IBM SP (nonzero timer cost), measured w exceeds the pure
        per-iteration cost — the Sec. 4.2 inflation at small granularity."""
        small = tomcatv_inputs(16, itmax=2)  # tiny tasks: inflation visible
        cal = measure_wparams(build_tomcatv(), small, 4, IBM_SP, seed=5)
        pure = STENCIL_OPS * IBM_SP.cpu.time_per_op
        assert cal.wparams["w_residual"] > pure

    def test_seed_reproducible(self):
        a = measure_wparams(build_tomcatv(), tomcatv_inputs(64, itmax=2), 4, IBM_SP, seed=9)
        b = measure_wparams(build_tomcatv(), tomcatv_inputs(64, itmax=2), 4, IBM_SP, seed=9)
        assert a.wparams == b.wparams

    def test_str_smoke(self):
        cal = measure_wparams(build_tomcatv(), tomcatv_inputs(32, itmax=1), 2, IBM_SP)
        assert "tomcatv" in str(cal)


class TestParamsIO:
    def test_roundtrip(self, tmp_path):
        cal = measure_wparams(build_tomcatv(), tomcatv_inputs(32, itmax=1), 2, IBM_SP)
        path = tmp_path / "tomcatv.params.json"
        save_params(cal, path)
        loaded = load_params(path)
        assert loaded == pytest.approx(cal.wparams)

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": 99, "wparams": {}}')
        with pytest.raises(ValueError, match="unsupported"):
            load_params(path)

    def test_missing_wparams_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": 1}')
        with pytest.raises(ValueError, match="malformed"):
            load_params(path)
