"""Integration tests: the full compiler pipeline on the paper's example.

Reproduces Fig. 1 end-to-end: the original MPI shift program (a) is
compiled to the simplified program (c) — retained scalar code, the
dummy communication buffer, delay calls with compiler-derived scaling
functions, and a read-and-broadcast of the measured parameters.
"""

import pytest

from repro.codegen import DUMMY_BUF, compile_program
from repro.ir import (
    AllocStmt,
    Assign,
    CompBlock,
    DelayStmt,
    MeasurementCollector,
    ProgramBuilder,
    ReadParams,
    RecvStmt,
    SendStmt,
    StartTimer,
    StopTimer,
    make_factory,
    myid,
    P,
    walk,
)
from repro.machine import TESTING_MACHINE
from repro.sim import ExecMode, Simulator
from repro.stg import condense
from repro.symbolic import Gt, Lt, Max, Min, Var, ceil_div

N = Var("N")
M = TESTING_MACHINE


def fig1_program():
    """Fig. 1(a): shift communication then a computational loop nest."""
    b = ProgramBuilder("fig1", params=("N",))
    b.array("A", size=N * ceil_div(N, P))
    b.array("D", size=N * ceil_div(N, P))
    b.assign("b", ceil_div(N, P))
    with b.if_(Gt(myid, 0)):
        b.send(dest=myid - 1, nbytes=(N - 2) * 8, array="D")
    with b.if_(Lt(myid, P - 1)):
        b.recv(source=myid + 1, nbytes=(N - 2) * 8, array="D")
    bvar = Var("b")
    work = (N - 2) * (Min.make(N, myid * bvar + bvar) - Max.make(2, myid * bvar + 1))
    b.compute("loop_nest", work=work, ops_per_iter=2, arrays=("A", "D"))
    return b.build()


@pytest.fixture(scope="module")
def compiled():
    return compile_program(fig1_program())


class TestSlicing:
    def test_criterion_contains_structure_vars(self, compiled):
        # dest/nbytes/cond/scaling variables: N and b (myid/P are builtin)
        assert "N" in compiled.slice.criterion
        assert "b" in compiled.slice.criterion

    def test_block_size_assign_retained(self, compiled):
        assigns = [s for s in compiled.original.statements() if isinstance(s, Assign)]
        assert len(assigns) == 1
        assert compiled.slice.keeps(assigns[0])

    def test_no_pinned_blocks(self, compiled):
        assert compiled.slice.pinned_blocks == frozenset()


class TestSimplifiedStructure:
    def test_starts_with_read_params(self, compiled):
        first = compiled.simplified.body[0]
        assert isinstance(first, ReadParams)
        assert first.names == ("w_loop_nest",)

    def test_assign_retained_executable(self, compiled):
        kinds = [type(s).__name__ for s in compiled.simplified.body]
        assert "Assign" in kinds

    def test_dummy_buffer_allocated_before_comm(self, compiled):
        body = compiled.simplified.body
        alloc_pos = next(i for i, s in enumerate(body) if isinstance(s, AllocStmt))
        comm_pos = next(
            i
            for i, s in enumerate(body)
            if any(x.is_comm() for x in walk([s])) and not isinstance(s, ReadParams)
        )
        assert alloc_pos < comm_pos
        assert body[alloc_pos].name == DUMMY_BUF

    def test_comm_buffers_redirected_to_dummy(self, compiled):
        sends = [s for s in compiled.simplified.statements() if isinstance(s, SendStmt)]
        recvs = [s for s in compiled.simplified.statements() if isinstance(s, RecvStmt)]
        assert all(s.array == DUMMY_BUF for s in sends)
        assert all(r.array == DUMMY_BUF for r in recvs)

    def test_compute_replaced_by_delay(self, compiled):
        stmts = list(compiled.simplified.statements())
        assert not any(isinstance(s, CompBlock) for s in stmts)
        delays = [s for s in stmts if isinstance(s, DelayStmt)]
        assert len(delays) == 1
        # Fig. 1(c): delay((N-2) * (min(...) - max(...)) * w_1)
        amount = delays[0].amount
        assert {"N", "b", "myid", "w_loop_nest"} <= amount.free_vars()

    def test_all_data_arrays_eliminated(self, compiled):
        assert compiled.simplified.arrays == {}

    def test_original_program_untouched(self, compiled):
        # codegen must not mutate the source program
        prog = compiled.original
        assert [type(s).__name__ for s in prog.body] == ["Assign", "If", "If", "CompBlock"]
        assert set(prog.arrays) == {"A", "D"}


class TestInstrumentedStructure:
    def test_timers_wrap_blocks(self, compiled):
        stmts = list(compiled.instrumented.statements())
        starts = [s for s in stmts if isinstance(s, StartTimer)]
        stops = [s for s in stmts if isinstance(s, StopTimer)]
        assert len(starts) == len(stops) == 1
        assert starts[0].task == stops[0].task == "loop_nest"

    def test_arrays_preserved(self, compiled):
        assert set(compiled.instrumented.arrays) == {"A", "D"}


class TestEndToEnd:
    """Run the Fig. 2 workflow on the testing machine and compare AM vs DE."""

    def _measure(self, compiled, inputs, nprocs):
        coll = MeasurementCollector()
        factory = make_factory(compiled.instrumented, inputs, collector=coll)
        Simulator(nprocs, factory, M, mode=ExecMode.MEASURED).run()
        return coll.params()

    @staticmethod
    def _bcast_cost(nparams, nprocs):
        """Startup cost of the simplified program's read_and_broadcast."""
        from repro.machine import NetworkModel

        return NetworkModel(M.net).collective_time("bcast", 8 * nparams, nprocs)

    def test_am_matches_de_on_noise_free_machine(self, compiled):
        """With exact w_i and no cache/noise effects, AM == DE exactly
        (modulo the parameter broadcast at startup)."""
        inputs = {"N": 64}
        nprocs = 4
        w = self._measure(compiled, inputs, nprocs)
        de = Simulator(
            nprocs, make_factory(compiled.original, inputs), M, mode=ExecMode.DE
        ).run()
        am = Simulator(
            nprocs, make_factory(compiled.simplified, inputs, wparams=w), M, mode=ExecMode.DE
        ).run()
        expected = de.elapsed + self._bcast_cost(len(w), nprocs)
        assert am.elapsed == pytest.approx(expected, rel=0.02)

    def test_am_memory_far_below_de(self, compiled):
        inputs = {"N": 256}
        nprocs = 4
        w = self._measure(compiled, inputs, nprocs)
        de = Simulator(
            nprocs, make_factory(compiled.original, inputs), M, mode=ExecMode.DE
        ).run()
        am = Simulator(
            nprocs, make_factory(compiled.simplified, inputs, wparams=w), M, mode=ExecMode.DE
        ).run()
        assert am.memory.app_bytes < de.memory.app_bytes / 50

    def test_am_scales_from_calibration_config(self, compiled):
        """Calibrate w_i at N=64/P=4, predict N=128/P=8 (the paper's
        measure-once-extrapolate methodology)."""
        w = self._measure(compiled, {"N": 64}, 4)
        de = Simulator(
            8, make_factory(compiled.original, {"N": 128}), M, mode=ExecMode.DE
        ).run()
        am = Simulator(
            8, make_factory(compiled.simplified, {"N": 128}, wparams=w), M, mode=ExecMode.DE
        ).run()
        expected = de.elapsed + self._bcast_cost(len(w), 8)
        assert am.elapsed == pytest.approx(expected, rel=0.05)

    def test_message_traffic_identical(self, compiled):
        inputs = {"N": 64}
        w = self._measure(compiled, inputs, 4)
        de = Simulator(4, make_factory(compiled.original, inputs), M).run()
        am = Simulator(4, make_factory(compiled.simplified, inputs, wparams=w), M).run()
        # AM adds only the one parameter broadcast; point-to-point matches
        assert am.stats.total_messages == de.stats.total_messages
        assert am.stats.total_bytes == de.stats.total_bytes


class TestPinnedBlockFlow:
    def test_block_output_feeding_comm_gets_pinned(self):
        """A task computing a communication argument cannot be abstracted."""

        def kern(env, arrays):
            env["target"] = (env["myid"] + 1) % env["P"]

        b = ProgramBuilder("pin", params=("N",))
        b.array("big", size=N * N)
        b.compute("route", work=N, writes={"target"}, kernel=kern, arrays=("big",))
        b.send(dest=Var("target"), nbytes=8)
        b.recv(source=(myid - 1 + P) % P, nbytes=8)
        prog = b.build()
        comp = compile_program(prog)
        route = prog.comp_blocks()[0]
        assert route.sid in comp.slice.pinned_blocks
        # the pinned block stays a CompBlock in the simplified program
        blocks = [s for s in comp.simplified.statements() if isinstance(s, CompBlock)]
        assert [bk.name for bk in blocks] == ["route"]
        # and its array must be kept
        assert "big" in comp.simplified.arrays

    def test_pinned_program_still_runs(self):
        def kern(env, arrays):
            env["target"] = (env["myid"] + 1) % env["P"]

        b = ProgramBuilder("pin", params=("N",))
        b.compute("route", work=N, writes={"target"}, kernel=kern)
        b.send(dest=Var("target"), nbytes=8)
        b.recv(source=(myid - 1 + P) % P, nbytes=8)
        comp = compile_program(b.build())
        res = Simulator(
            4, make_factory(comp.simplified, {"N": 10}, wparams={}), M
        ).run()
        assert res.stats.total_messages == 4

    def test_summary_smoke(self):
        comp = compile_program(fig1_program())
        text = comp.summary()
        assert "condensed region" in text and "arrays eliminated" in text
