"""Tests for the abstract-communication extension (paper Sec. 5)."""

import pytest

from repro.apps import (
    build_sweep3d,
    build_tomcatv,
    sweep3d_inputs,
    tomcatv_inputs,
)
from repro.codegen import generate_abstract_comm
from repro.ir import DelayStmt, RecvStmt, SendStmt, make_factory
from repro.machine import IBM_SP
from repro.sim import ExecMode, Simulator
from repro.workflow import ModelingWorkflow


@pytest.fixture(scope="module")
def tomcatv_wf():
    wf = ModelingWorkflow(
        build_tomcatv(), IBM_SP, calib_inputs=tomcatv_inputs(128, itmax=3), calib_nprocs=4
    )
    wf.calibrate()
    return wf


@pytest.fixture(scope="module")
def sweep_wf():
    wf = ModelingWorkflow(
        build_sweep3d(),
        IBM_SP,
        calib_inputs=sweep3d_inputs(32, 32, 32, 4, kb=2, ab=1, niter=1),
        calib_nprocs=4,
    )
    wf.calibrate()
    return wf


class TestTransformation:
    def test_no_p2p_remains(self, tomcatv_wf):
        abstract = generate_abstract_comm(tomcatv_wf.compiled.simplified, IBM_SP)
        stmts = list(abstract.statements())
        assert not any(isinstance(s, (SendStmt, RecvStmt)) for s in stmts)
        assert any(
            isinstance(s, DelayStmt) and s.task.startswith("abstract_") for s in stmts
        )

    def test_collectives_kept(self, tomcatv_wf):
        abstract = generate_abstract_comm(tomcatv_wf.compiled.simplified, IBM_SP)
        assert any(s.is_comm() for s in abstract.statements())

    def test_runs_without_messages(self, tomcatv_wf):
        abstract = generate_abstract_comm(tomcatv_wf.compiled.simplified, IBM_SP)
        res = Simulator(
            4,
            make_factory(abstract, tomcatv_inputs(128, itmax=3), wparams=tomcatv_wf.wparams),
            IBM_SP,
            mode=ExecMode.AM,
        ).run()
        assert res.stats.total_messages == 0
        assert res.elapsed > 0

    def test_metadata_recorded(self, tomcatv_wf):
        abstract = generate_abstract_comm(tomcatv_wf.compiled.simplified, IBM_SP)
        assert abstract.meta["abstract_comm"] == IBM_SP.name


class TestAccuracyTradeoff:
    """The reason the paper simulates communication in detail."""

    def _am_and_abstract(self, wf, inputs, nprocs):
        am = wf.run_am(inputs, nprocs).elapsed
        abstract_prog = generate_abstract_comm(wf.compiled.simplified, IBM_SP)
        abstract = Simulator(
            nprocs,
            make_factory(abstract_prog, inputs, wparams=wf.wparams),
            IBM_SP,
            mode=ExecMode.AM,
        ).run().elapsed
        meas = wf.run_measured(inputs, nprocs).elapsed
        return (
            abs(am - meas) / meas,
            abs(abstract - meas) / meas,
        )

    def test_loosely_coupled_app_survives_abstraction(self, tomcatv_wf):
        err_am, err_abs = self._am_and_abstract(tomcatv_wf, tomcatv_inputs(128, itmax=3), 4)
        assert err_abs < 0.25  # still usable

    def test_wavefront_app_needs_detailed_communication(self, sweep_wf):
        inputs = sweep3d_inputs(32, 32, 32, 16, kb=2, ab=1, niter=1)
        err_am, err_abs = self._am_and_abstract(sweep_wf, inputs, 16)
        # detailed communication keeps AM accurate; the abstract model
        # loses the pipeline-fill time and degrades substantially
        assert err_abs > 2 * err_am
        assert err_abs > 0.10
