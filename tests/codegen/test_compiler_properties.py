"""Property-based tests of the whole compiler pipeline.

The central correctness property of the paper's transformation: for a
deterministic program on a noise-free, flat-cache machine with exactly
measured w_i, the simplified program must predict the *same* execution
time, message traffic and communication pattern as direct execution of
the original (the only permitted difference being the startup parameter
broadcast).  Hypothesis generates random structured programs — loops,
myid-guarded branches, compute blocks, ring/shift communication and
collectives — and checks the equivalence end to end.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.codegen import compile_program
from repro.ir import MeasurementCollector, ProgramBuilder, make_factory, myid, P
from repro.machine import NetworkModel, TESTING_MACHINE
from repro.sim import ExecMode, Simulator
from repro.stg import condense, w_param
from repro.symbolic import Eq, Gt, Lt, Mod, Var

M = TESTING_MACHINE
N = Var("N")


@st.composite
def programs(draw):
    """A random structured message-passing program over parameter N."""
    b = ProgramBuilder(f"prop_{draw(st.integers(0, 10**6))}", params=("N",))
    b.array("buf", size=N + 16)
    b.assign("half", N // 2)
    n_stmts = draw(st.integers(1, 5))
    task_id = 0

    def emit_block(depth, local_only=False):
        nonlocal task_id
        # inside a myid-guarded branch, only rank-local work is SPMD-valid
        # (communication or collectives there would diverge across ranks)
        if local_only:
            choices = ["compute", "loop"] if depth < 2 else ["compute"]
        elif depth < 2:
            choices = ["compute", "loop", "branch", "ring", "allreduce", "barrier"]
        else:
            choices = ["compute", "ring", "allreduce", "barrier"]
        kind = draw(st.sampled_from(choices))
        if kind == "compute":
            task_id += 1
            work = draw(st.sampled_from([N, N * 2, Var("half") + 1, N * N // 4 + 1]))
            b.compute(f"t{task_id}", work=work, ops_per_iter=draw(st.integers(1, 5)), arrays=("buf",))
        elif kind == "loop":
            lo = draw(st.integers(1, 2))
            hi = draw(st.integers(2, 4))
            with b.loop(f"i{depth}_{task_id}", lo, hi):
                for _ in range(draw(st.integers(1, 2))):
                    emit_block(depth + 1, local_only)
        elif kind == "branch":
            cond = draw(
                st.sampled_from(
                    [Gt(myid, 0), Eq(Mod.make(myid, 2), 0), Lt(myid, P - 1)]
                )
            )
            with b.if_(cond):
                emit_block(depth + 1, local_only=True)
            with b.else_():
                emit_block(depth + 1, local_only=True)
        elif kind == "ring":
            nbytes = draw(st.sampled_from([8, 64, N * 8]))
            tag = draw(st.integers(0, 3))
            b.send(dest=(myid + 1) % P, nbytes=nbytes, tag=tag, array="buf")
            b.recv(source=(myid - 1 + P) % P, nbytes=nbytes, tag=tag, array="buf")
        elif kind == "allreduce":
            b.allreduce(nbytes=8)
        else:
            b.barrier()

    for _ in range(n_stmts):
        emit_block(0)
    return b.build()


def _measure_exact(compiled, inputs, nprocs):
    coll = MeasurementCollector()
    factory = make_factory(compiled.instrumented, inputs, collector=coll)
    Simulator(nprocs, factory, M, mode=ExecMode.MEASURED).run()
    return coll.params()


@given(programs(), st.integers(2, 5), st.integers(4, 40))
@settings(max_examples=25, deadline=None)
def test_simplified_program_preserves_de_semantics(prog, nprocs, n_value):
    """AM == DE on the exact machine, up to the parameter broadcast."""
    inputs = {"N": n_value}
    compiled = compile_program(prog)
    wparams = _measure_exact(compiled, inputs, nprocs)
    # measured coefficients may omit tasks whose dynamic work was 0;
    # give those an arbitrary value (they contribute zero delay)
    for name in compiled.w_param_names:
        wparams.setdefault(name, 1.0)

    de = Simulator(nprocs, make_factory(prog, inputs), M, mode=ExecMode.DE).run()
    am = Simulator(
        nprocs, make_factory(compiled.simplified, inputs, wparams=wparams), M, mode=ExecMode.AM
    ).run()

    bcast = (
        NetworkModel(M.net).collective_time("bcast", 8 * len(compiled.w_param_names), nprocs)
        if compiled.w_param_names
        else 0.0
    )
    assert am.elapsed == pytest.approx(de.elapsed + bcast, rel=1e-6, abs=1e-9)
    assert am.stats.total_messages == de.stats.total_messages
    assert am.stats.total_bytes == de.stats.total_bytes


@given(programs(), st.integers(2, 4), st.integers(4, 24))
@settings(max_examples=25, deadline=None)
def test_scaling_function_equals_direct_cost(prog, nprocs, n_value):
    """Each condensed region's symbolic cost, evaluated with exact w_i,
    equals the direct execution time of the statements it replaced —
    checked via total per-process compute time."""
    inputs = {"N": n_value}
    compiled = compile_program(prog)
    wparams = _measure_exact(compiled, inputs, nprocs)
    for name in compiled.w_param_names:
        wparams.setdefault(name, 1.0)

    de = Simulator(nprocs, make_factory(prog, inputs), M, mode=ExecMode.DE).run()
    am = Simulator(
        nprocs, make_factory(compiled.simplified, inputs, wparams=wparams), M, mode=ExecMode.AM
    ).run()
    for p_de, p_am in zip(de.stats.procs, am.stats.procs):
        assert p_am.compute_time == pytest.approx(p_de.compute_time, rel=1e-6, abs=1e-12)


@given(programs())
@settings(max_examples=50, deadline=None)
def test_condensation_covers_all_blocks(prog):
    """Every computational task is either condensed into a region or
    pinned — none silently dropped."""
    compiled = compile_program(prog)
    region_blocks = {b for r in compiled.plan.regions for b in r.blocks}
    pinned_names = {
        s.name for s in prog.comp_blocks() if s.sid in compiled.slice.pinned_blocks
    }
    all_blocks = {s.name for s in prog.comp_blocks()}
    assert region_blocks | pinned_names == all_blocks


@given(programs())
@settings(max_examples=50, deadline=None)
def test_simplified_has_no_unpinned_compblocks(prog):
    from repro.ir import CompBlock

    compiled = compile_program(prog)
    names = {
        s.name for s in compiled.simplified.statements() if isinstance(s, CompBlock)
    }
    pinned = {s.name for s in prog.comp_blocks() if s.sid in compiled.slice.pinned_blocks}
    assert names == pinned
