"""Backend selection and byte-identity between the two kernels.

Every assertion here compares the *serialized* per-rank statistics (and,
where collected, the trace event list) — the compiled backend's contract
is byte-identity, not approximate agreement.
"""

import json

import pytest

from repro import mpi
from repro.ir import make_factory
from repro.ir.builder import P, ProgramBuilder, myid
from repro.kernel import clear_cache
from repro.machine import TESTING_MACHINE
from repro.sim import ExecMode, Simulator
from repro.symbolic import Var

M = TESTING_MACHINE


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


def fingerprint(result):
    return json.dumps(
        [p.to_dict() for p in result.stats.procs], sort_keys=True, separators=(",", ":")
    )


def ring():
    b = ProgramBuilder("ident_ring", params=("iters",))
    with b.loop("i", 1, Var("iters")):
        b.send(dest=(myid + 1) % P, nbytes=64, tag=0)
        b.recv(source=(myid - 1) % P, nbytes=64, tag=0)
    return make_factory(b.build(), {"iters": 5})


def nonblocking():
    b = ProgramBuilder("ident_nb", params=("iters",))
    with b.loop("i", 1, Var("iters")):
        b.irecv(source=(myid - 1) % P, nbytes=256, tag=1, handle="hr")
        b.isend(dest=(myid + 1) % P, nbytes=256, tag=1, handle="hs")
        b.compute("overlap", work=500)
        b.waitall("hr", "hs")
    return make_factory(b.build(), {"iters": 4})


def collective():
    b = ProgramBuilder("ident_coll", params=("iters",))
    with b.loop("i", 1, Var("iters")):
        b.allreduce(nbytes=8, contrib=1, result_var="acc")
        b.compute("work", work=300)
    return make_factory(b.build(), {"iters": 3})


FACTORIES = [ring, nonblocking, collective]


@pytest.mark.parametrize("make", FACTORIES, ids=lambda f: f.__name__)
@pytest.mark.parametrize("mode", [ExecMode.DE, ExecMode.AM])
def test_stats_identical(make, mode):
    interp = Simulator(8, make(), M, mode=mode).run()
    compiled = Simulator(8, make(), M, mode=mode, backend="compiled").run()
    assert fingerprint(interp) == fingerprint(compiled)


@pytest.mark.parametrize("make", FACTORIES, ids=lambda f: f.__name__)
def test_traces_identical(make):
    interp = Simulator(8, make(), M, mode=ExecMode.DE, collect_trace=True).run()
    compiled = Simulator(
        8, make(), M, mode=ExecMode.DE, collect_trace=True, backend="compiled"
    ).run()
    assert repr(interp.trace.events) == repr(compiled.trace.events)
    assert fingerprint(interp) == fingerprint(compiled)


def test_compiled_sim_reports_backend():
    sim = Simulator(4, ring(), M, mode=ExecMode.DE, backend="compiled")
    assert sim.backend == "compiled"
    assert sim.backend_fallback_reason is None


class TestAuto:
    def test_auto_compiles_ir_programs(self):
        sim = Simulator(4, ring(), M, mode=ExecMode.DE, backend="auto")
        assert sim.backend == "compiled"
        interp = Simulator(4, ring(), M, mode=ExecMode.DE).run()
        assert fingerprint(sim.run()) == fingerprint(interp)

    def test_auto_falls_back_for_raw_generators(self):
        def prog(rank, size):
            yield mpi.compute(ops=100)

        sim = Simulator(2, prog, M, mode=ExecMode.DE, backend="auto")
        assert sim.backend == "interpreted"
        assert sim.backend_fallback_reason is not None
        sim.run()  # and it still runs

    def test_auto_falls_back_for_unlowerable_ir(self):
        b = ProgramBuilder("auto_materialized")
        b.array("hist", 16, materialize=True)
        b.compute("bin", work=10, writes={"hist"})
        factory = make_factory(b.build(), {})
        sim = Simulator(2, factory, M, mode=ExecMode.DE, backend="auto")
        assert sim.backend == "interpreted"
        assert "materialized" in sim.backend_fallback_reason
        interp = Simulator(2, factory, M, mode=ExecMode.DE).run()
        assert fingerprint(sim.run()) == fingerprint(interp)


class TestErrors:
    def test_compiled_rejects_raw_generators(self):
        def prog(rank, size):
            yield mpi.compute(ops=100)

        with pytest.raises(ValueError, match="cannot run this program"):
            Simulator(2, prog, M, mode=ExecMode.DE, backend="compiled")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            Simulator(2, ring(), M, mode=ExecMode.DE, backend="jit")

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "compiled")
        sim = Simulator(4, ring(), M, mode=ExecMode.DE)
        assert sim.backend == "compiled"
