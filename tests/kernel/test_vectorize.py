"""Unit coverage for the NumPy delay-wave helpers.

Identity at the simulator level is covered by ``test_backend.py``; these
pin the guard conditions that route a site to (or away from) the batch
path, since a wrong routing decision silently degrades to the scalar
loop — correct but slow — or worse, batches something inexact.
"""

import pytest

from repro.kernel import vectorize
from repro.symbolic import Var
from repro.symbolic.expr import Const, FloorDiv


@pytest.fixture(autouse=True)
def _fresh_counters():
    vectorize.reset_wave_stats()
    yield
    vectorize.reset_wave_stats()


class TestBatchSafe:
    def test_simple_affine_ok(self):
        assert vectorize.batch_safe(Var("i") * 3 + 1)

    def test_division_ok(self):
        assert vectorize.batch_safe(Var("n") / Const(7))

    def test_min_max_ok(self):
        from repro.symbolic.expr import Max, Min

        assert vectorize.batch_safe(Max((Var("a"), Var("b"))))
        assert vectorize.batch_safe(Min((Var("a"), Const(2))))

    def test_overflowing_product_rejected(self):
        # (2^16)^4 blows past float64's exact-integer range
        e = Var("a") * Var("b") * Var("c") * Var("d")
        assert not vectorize.batch_safe(e)

    def test_unsupported_operator_rejected(self):
        assert not vectorize.batch_safe(FloorDiv(Var("a"), Const(2)))

    def test_nonfinite_constant_rejected(self):
        assert not vectorize.batch_safe(Const(float("inf")) + Var("a"))


class TestDelayWave:
    def test_matches_scalar_loop_exactly(self):
        fn = lambda _np, _i, v_k: _i * 0.25 + v_k  # noqa: E731
        out = vectorize.delay_wave(1, 100, (3,), fn)
        expected = [max(float(i * 0.25 + 3), 0.0) for i in range(1, 101)]
        assert out == expected
        stats = vectorize.wave_stats()
        assert stats["waves"] == 1
        assert stats["vector_delays"] == 100

    def test_clamps_negative_amounts(self):
        fn = lambda _np, _i: _i - 5.0  # noqa: E731
        out = vectorize.delay_wave(1, 10, (), fn)
        assert out[:4] == [0.0, 0.0, 0.0, 0.0]

    def test_loop_invariant_amount_broadcast(self):
        fn = lambda _np, _i, v_w: v_w * 2.0  # noqa: E731
        assert vectorize.delay_wave(1, 4, (0.5,), fn) == [1.0, 1.0, 1.0, 1.0]

    def test_empty_range(self):
        assert vectorize.delay_wave(5, 4, (), lambda _np, _i: _i) == []

    def test_out_of_range_args_bail_to_scalar(self):
        fn = lambda _np, _i, v_k: _i + v_k  # noqa: E731
        assert vectorize.delay_wave(1, 10, (1 << 20,), fn) is None
        assert vectorize.delay_wave(1, 10, (float("nan"),), fn) is None
        assert vectorize.delay_wave(1, 1 << 20, (), lambda _np, _i: _i) is None
        assert vectorize.wave_stats()["waves"] == 0


class TestStaticWaves:
    def _site(self, sid=0):
        # lo=1, hi=input n, amount = i * w  (rank-independent)
        return (
            sid,
            lambda _np, v_n, v_w: 1,
            lambda _np, v_n, v_w: v_n,
            lambda _np, _i, _myid, v_n, v_w: _i * v_w,
            (("n", "input"), ("w", "wparam")),
        )

    def test_precomputes_rows_for_all_ranks(self):
        waves = vectorize.static_waves(3, {"n": 4}, {"w": 0.5}, [self._site()])
        assert list(waves) == [0]
        assert waves[0] == [[0.5, 1.0, 1.5, 2.0]] * 3
        stats = vectorize.wave_stats()
        assert stats["static_batches"] == 1
        assert stats["vector_delays"] == 12

    def test_missing_input_omits_site(self):
        waves = vectorize.static_waves(3, {}, {"w": 0.5}, [self._site()])
        assert waves == {}

    def test_unsafe_value_omits_site(self):
        waves = vectorize.static_waves(3, {"n": 1 << 20}, {"w": 0.5}, [self._site()])
        assert waves == {}
