"""Deadlock surfacing and teardown across both backends.

Regression pinned here: when a deadlock is detected, the engine closes
every still-suspended rank generator — and a generator that *raises*
inside ``close()`` (a ``finally:`` block blowing up on ``GeneratorExit``)
must not mask the original :class:`DeadlockError`.
"""

import pytest

from repro import mpi
from repro.ir import make_factory
from repro.ir.builder import P, ProgramBuilder, myid
from repro.kernel import clear_cache
from repro.machine import TESTING_MACHINE
from repro.sim import DeadlockError, ExecMode, Simulator

M = TESTING_MACHINE


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


def all_recv_factory():
    """Every rank posts a receive nobody ever sends: guaranteed deadlock."""
    b = ProgramBuilder("deadlock_recv")
    b.recv(source=(myid + 1) % P, nbytes=8, tag=0)
    return make_factory(b.build(), {})


class TestRaisingClose:
    def test_interpreted_deadlock_not_masked_by_close(self):
        closed = []

        def prog(rank, size):
            try:
                yield mpi.recv(source=(rank + 1) % size, tag=0)
            finally:
                closed.append(rank)
                raise RuntimeError("boom in close()")

        with pytest.raises(DeadlockError) as exc_info:
            Simulator(4, prog, M, mode=ExecMode.DE).run()
        # teardown really entered every blocked rank's finally block,
        # and the RuntimeError raised there did not replace the report
        assert sorted(closed) == [0, 1, 2, 3]
        assert exc_info.value.report is not None

    def test_compiled_deadlock_not_masked_by_close(self):
        # the compiled request_gen path (trace collection disables the
        # fast loop, so teardown runs through the engine's close loop)
        with pytest.raises(DeadlockError) as exc_info:
            Simulator(
                4, all_recv_factory(), M, mode=ExecMode.DE,
                backend="compiled", collect_trace=True,
            ).run()
        assert exc_info.value.report is not None

    def test_compiled_fast_path_deadlock(self):
        # the bucket-queue fast loop's own teardown/close path
        with pytest.raises(DeadlockError) as exc_info:
            Simulator(
                4, all_recv_factory(), M, mode=ExecMode.DE, backend="compiled"
            ).run()
        assert exc_info.value.report is not None


class TestReportParity:
    def test_report_identical_across_backends(self):
        with pytest.raises(DeadlockError) as interp:
            Simulator(4, all_recv_factory(), M, mode=ExecMode.DE).run()
        with pytest.raises(DeadlockError) as compiled:
            Simulator(
                4, all_recv_factory(), M, mode=ExecMode.DE, backend="compiled"
            ).run()
        assert str(interp.value) == str(compiled.value)

    def test_mismatched_nonblocking_deadlock(self):
        b = ProgramBuilder("deadlock_wait")
        b.irecv(source=(myid + 1) % P, nbytes=8, tag=7, handle="h")
        b.waitall("h")
        factory = make_factory(b.build(), {})
        with pytest.raises(DeadlockError) as interp:
            Simulator(3, factory, M, mode=ExecMode.DE).run()
        with pytest.raises(DeadlockError) as compiled:
            Simulator(3, factory, M, mode=ExecMode.DE, backend="compiled").run()
        assert str(interp.value) == str(compiled.value)
