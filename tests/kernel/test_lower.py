"""Lowering, the content-addressed caches, and the warm-kernel store."""

import json

import pytest

from repro.ir.builder import P, ProgramBuilder, myid
from repro.kernel import (
    UnsupportedConstructError,
    cache_stats,
    cached_kernels,
    clear_cache,
    kernel_for,
    load_kernel_source,
    lower_program,
    program_fingerprint,
    record_fallback,
    set_warm_dir,
)
from repro.store import load_warm_kernel, save_warm_kernel
from repro.symbolic import Var


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    set_warm_dir(None)
    yield
    clear_cache()
    set_warm_dir(None)


def ring_program(iters=4):
    b = ProgramBuilder("lower_ring", params=("iters",))
    with b.loop("i", 1, Var("iters")):
        b.send(dest=(myid + 1) % P, nbytes=64, tag=0)
        b.recv(source=(myid - 1) % P, nbytes=64, tag=0)
    return b.build()


def materialized_program():
    b = ProgramBuilder("lower_materialized")
    b.array("hist", 16, materialize=True)
    b.compute("bin", work=10, writes={"hist"})
    return b.build()


class TestFingerprint:
    def test_deterministic(self):
        assert program_fingerprint(ring_program()) == program_fingerprint(ring_program())

    def test_distinguishes_programs(self):
        other = ProgramBuilder("lower_other")
        other.compute("c", work=1)
        assert program_fingerprint(ring_program()) != program_fingerprint(other.build())


class TestLowerProgram:
    def test_source_has_both_entry_points(self):
        kernel = lower_program(ring_program())
        assert "def request_gen" in kernel.source
        assert "def fast_gen" in kernel.source
        assert kernel.program_name == "lower_ring"
        assert kernel.fingerprint == program_fingerprint(ring_program())
        assert callable(kernel.request_gen) and callable(kernel.fast_gen)

    def test_materialized_array_rejected(self):
        with pytest.raises(UnsupportedConstructError, match="materialized"):
            lower_program(materialized_program())

    def test_python_kernel_callable_rejected(self):
        b = ProgramBuilder("lower_pykernel")
        b.compute("c", work=10, kernel=lambda **kw: 0.0)
        with pytest.raises(UnsupportedConstructError):
            lower_program(b.build())


class TestCache:
    def test_kernel_for_caches_by_fingerprint(self):
        k1 = kernel_for(ring_program())
        k2 = kernel_for(ring_program())
        assert k1 is k2
        stats = cache_stats()
        assert stats["cache_misses"] == 1
        assert stats["cache_hits"] == 1
        assert stats["lowered"] == 1
        assert stats["cached_programs"] == 1
        assert k1.fingerprint in cached_kernels()

    def test_record_fallback_counts(self):
        record_fallback("prog", "because")
        assert cache_stats()["fallbacks"] == 1

    def test_clear_cache_resets(self):
        kernel_for(ring_program())
        clear_cache()
        stats = cache_stats()
        assert stats["cached_programs"] == 0
        assert stats["cache_misses"] == 0


class TestLoadKernelSource:
    def test_roundtrip(self):
        kernel = lower_program(ring_program())
        clear_cache()
        loaded = load_kernel_source(kernel.source)
        assert loaded.fingerprint == kernel.fingerprint
        assert loaded.program_name == kernel.program_name
        assert cache_stats()["warm_loads"] == 1

    def test_garbage_rejected(self):
        with pytest.raises(UnsupportedConstructError):
            load_kernel_source("this is not a kernel module")


class TestWarmStore:
    def test_save_load_roundtrip(self, tmp_path):
        path = save_warm_kernel(tmp_path, program="p", fingerprint="f" * 64, source="SRC")
        assert path.name == f"kernel-{'f' * 64}.json"
        assert load_warm_kernel(tmp_path, "f" * 64) == "SRC"

    def test_missing_returns_none(self, tmp_path):
        assert load_warm_kernel(tmp_path, "0" * 64) is None

    def test_corrupt_returns_none(self, tmp_path):
        (tmp_path / ("kernel-" + "a" * 64 + ".json")).write_text("{nope")
        assert load_warm_kernel(tmp_path, "a" * 64) is None

    def test_fingerprint_mismatch_returns_none(self, tmp_path):
        save_warm_kernel(tmp_path, program="p", fingerprint="b" * 64, source="SRC")
        doc = json.loads((tmp_path / ("kernel-" + "b" * 64 + ".json")).read_text())
        doc["fingerprint"] = "c" * 64
        (tmp_path / ("kernel-" + "b" * 64 + ".json")).write_text(json.dumps(doc))
        assert load_warm_kernel(tmp_path, "b" * 64) is None

    def test_kernel_for_persists_and_reloads(self, tmp_path):
        set_warm_dir(tmp_path)
        kernel = kernel_for(ring_program())
        files = list(tmp_path.glob("kernel-*.json"))
        assert [f.name for f in files] == [f"kernel-{kernel.fingerprint}.json"]

        clear_cache()
        set_warm_dir(tmp_path)
        warm = kernel_for(ring_program())
        assert warm.fingerprint == kernel.fingerprint
        stats = cache_stats()
        assert stats["warm_loads"] == 1
        assert stats["lowered"] == 0  # the warm hit skipped lowering entirely

    def test_aliased_warm_entry_relowered(self, tmp_path):
        # a hand-edited warm file whose embedded fingerprint differs from
        # its filename must not serve the wrong kernel
        set_warm_dir(tmp_path)
        kernel = kernel_for(ring_program())
        alias = kernel.source.replace(kernel.fingerprint, "d" * 64)
        (tmp_path / f"kernel-{kernel.fingerprint}.json").write_text(json.dumps({
            "schema_version": 1,
            "kind": "warm-kernel",
            "program": kernel.program_name,
            "fingerprint": kernel.fingerprint,
            "source": alias,
        }))
        clear_cache()
        set_warm_dir(tmp_path)
        reloaded = kernel_for(ring_program())
        assert reloaded.fingerprint == kernel.fingerprint
        assert cache_stats()["lowered"] == 1  # fell through to a fresh lowering
