"""ResultStore: content addressing, LRU eviction, crash consistency,
warm-start calibrations."""

import json
import os

from repro.ir.interp import BranchProfile
from repro.measure import Calibration
from repro.store import (
    ResultStore,
    load_warm_calibration,
    save_warm_calibration,
    scan_store,
    warm_calibration_key,
)

CTX = "c" * 16


def _doc(i, pad=0):
    return {"run_id": f"r{i:04d}", "outcome": "ok", "x": "y" * pad}


def test_miss_put_hit_and_counters(tmp_path):
    store = ResultStore(tmp_path)
    assert store.get(CTX, "r0000") is None
    store.put(CTX, "r0000", _doc(0))
    assert store.get(CTX, "r0000")["outcome"] == "ok"
    stats = store.stats()
    assert (stats["hits"], stats["misses"], stats["puts"]) == (1, 1, 1)
    assert stats["entries"] == 1 and stats["contexts"] == 1


def test_counters_and_entries_survive_restart(tmp_path):
    store = ResultStore(tmp_path)
    for i in range(5):
        store.put(CTX, f"r{i:04d}", _doc(i))
    store.get(CTX, "r0000")
    store.get(CTX, "zzzz")  # miss
    before = store.stats()
    store.close()
    again = ResultStore(tmp_path)
    after = again.stats()
    assert after == before
    assert again.get(CTX, "r0003")["run_id"] == "r0003"


def test_lru_eviction_respects_byte_budget_and_recency(tmp_path):
    store = ResultStore(tmp_path, max_bytes=600)
    for i in range(4):
        store.put(CTX, f"r{i:04d}", _doc(i, pad=100))
    # refresh r0000 so it is the most recently used
    assert store.get(CTX, "r0000") is not None
    store.put(CTX, "r9999", _doc(9999, pad=100))
    stats = store.stats()
    assert stats["bytes"] <= 600
    assert stats["evictions"] > 0
    assert store.contains(CTX, "r0000")  # recently used: survived
    assert not store.contains(CTX, "r0001")  # LRU victim
    # evicted files are really gone from disk
    assert not (store.store_dir / CTX / "r0001.json").exists()


def test_reload_tolerates_torn_index_tail(tmp_path):
    store = ResultStore(tmp_path)
    store.put(CTX, "r0000", _doc(0))
    store.put(CTX, "r0001", _doc(1))
    with open(store.index_path, "a") as fh:
        fh.write('{"op": "put", "entry": "truncat')  # torn O_APPEND tail
    again = ResultStore(tmp_path)
    assert again.stats()["entries"] == 2
    assert again.get(CTX, "r0001") is not None


def test_reload_reconciles_unjournaled_and_deleted_entries(tmp_path):
    store = ResultStore(tmp_path)
    store.put(CTX, "r0000", _doc(0))
    store.put(CTX, "r0001", _doc(1))
    # simulate a crash after the entry landed but before the index append
    extra = store.store_dir / CTX / "r0002.json"
    extra.write_text(json.dumps(_doc(2)))
    # and a foreign deletion of a journaled entry
    os.unlink(store.store_dir / CTX / "r0000.json")
    again = ResultStore(tmp_path)
    assert again.contains(CTX, "r0002")  # found on disk, adopted
    assert not again.contains(CTX, "r0000")  # filesystem wins
    assert again.get(CTX, "r0002")["run_id"] == "r0002"


def test_corrupt_entry_degrades_to_miss(tmp_path):
    store = ResultStore(tmp_path)
    store.put(CTX, "r0000", _doc(0))
    (store.store_dir / CTX / "r0000.json").write_text("{not json")
    assert store.get(CTX, "r0000") is None
    assert not store.contains(CTX, "r0000")


def test_index_journal_is_compacted(tmp_path):
    """Touch records must never grow the journal (or the next startup's
    replay) without bound; close() leaves the minimal equivalent."""
    store = ResultStore(tmp_path)
    store.COMPACT_MIN_OPS = 16  # shrink the threshold for the test
    for i in range(3):
        store.put(CTX, f"r{i:04d}", _doc(i))
    for _ in range(40):  # a busy server: cache hits pile up touches
        assert store.get(CTX, "r0001") is not None
    live = (tmp_path / "index.jsonl").read_text().splitlines()
    assert len(live) <= 16  # compacted in-line while serving
    store.close()
    compacted = (tmp_path / "index.jsonl").read_text().splitlines()
    assert len(compacted) == 4  # one put per live entry + the counters
    # the compacted journal preserves counters and LRU order exactly
    again = ResultStore(tmp_path)
    stats = again.stats()
    assert (stats["hits"], stats["misses"], stats["puts"]) == (40, 0, 3)
    assert stats["entries"] == 3
    order = list(again._entries)
    assert order[0] == f"{CTX}/r0000.json"  # least recently used first
    assert order[-1] == f"{CTX}/r0001.json"  # the touched entry is newest


def test_scan_store_is_nonmutating(tmp_path):
    store = ResultStore(tmp_path)
    store.put(CTX, "r0000", _doc(0))
    store.get(CTX, "r0000")
    store.close()
    before = (tmp_path / "index.jsonl").read_bytes()
    stats = scan_store(tmp_path)
    assert stats["entries"] == 1
    assert stats["hits"] == 1 and stats["puts"] == 1
    assert (tmp_path / "index.jsonl").read_bytes() == before


def test_scan_store_rejects_non_store_dir(tmp_path):
    assert scan_store(tmp_path) is None


# -- warm calibrations ---------------------------------------------------------


def _calibration():
    profile = BranchProfile()
    profile.record(7, True)
    profile.record(7, False)
    return Calibration(
        program="app", inputs={"n": 64.0}, nprocs=2, machine="IBM-SP",
        wparams={"w_body": 1.25e-6}, profile=profile, elapsed=0.5,
    )


def test_warm_calibration_round_trip(tmp_path):
    cal = _calibration()
    key = warm_calibration_key(app="app", machine="IBM-SP", calib_nprocs=2,
                               calib_inputs={"n": 64.0}, seed=0)
    save_warm_calibration(tmp_path, key, cal)
    loaded = load_warm_calibration(tmp_path, key, program="app")
    assert loaded is not None
    assert loaded.wparams == cal.wparams
    assert loaded.profile.to_dict() == cal.profile.to_dict()
    assert loaded.elapsed == cal.elapsed


def test_warm_calibration_key_is_sensitive_to_each_field():
    base = dict(app="a", machine="m", calib_nprocs=2,
                calib_inputs={"n": 1.0}, seed=0)
    key = warm_calibration_key(**base)
    for field, value in (("app", "b"), ("machine", "x"), ("calib_nprocs", 4),
                         ("calib_inputs", {"n": 2.0}), ("seed", 1)):
        assert warm_calibration_key(**{**base, field: value}) != key


def test_warm_calibration_program_mismatch_degrades_to_cold(tmp_path):
    key = warm_calibration_key(app="app", machine="IBM-SP", calib_nprocs=2,
                               calib_inputs={}, seed=0)
    save_warm_calibration(tmp_path, key, _calibration())
    assert load_warm_calibration(tmp_path, key, program="other") is None
    assert load_warm_calibration(tmp_path, "missing" * 2) is None


def test_campaign_warm_start_skips_calibration(tmp_path):
    """Second execute_request with the same warm_dir loads, not measures."""
    from repro.api import RunRequest
    from repro.workflow.campaign import execute_request

    req = RunRequest(app="sample_nearest_neighbor", mode="am", nprocs=4,
                     inputs=(("n", 64),))
    first = execute_request(req, calib_procs=2, warm_dir=str(tmp_path))
    saved = list(tmp_path.glob("*.json"))
    assert len(saved) == 1  # calibration persisted
    second = execute_request(req, calib_procs=2, warm_dir=str(tmp_path))
    assert first.outcome == "ok" and second.outcome == "ok"
    assert first.stats == second.stats  # warm start is bit-identical
