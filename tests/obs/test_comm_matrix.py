"""Tests for the communication-matrix report."""

from repro import mpi
from repro.machine import TESTING_MACHINE
from repro.obs import comm_matrix, format_comm_matrix
from repro.sim import ExecMode, Simulator


def run_traced(prog, nprocs=4):
    return Simulator(
        nprocs, prog, TESTING_MACHINE, mode=ExecMode.DE, collect_trace=True
    ).run()


def ring(rank, size):
    yield mpi.send(dest=(rank + 1) % size, nbytes=128)
    yield mpi.recv(source=(rank - 1) % size)


class TestCommMatrix:
    def test_ring_pattern(self):
        res = run_traced(ring, nprocs=4)
        cm = comm_matrix(res.trace)
        assert cm.nprocs == 4
        for src in range(4):
            for dst in range(4):
                expected = 1 if dst == (src + 1) % 4 else 0
                assert cm.messages[src][dst] == expected
                assert cm.bytes[src][dst] == expected * 128
        assert cm.total_messages == 4
        assert cm.total_bytes == 4 * 128

    def test_totals_match_simstats(self):
        res = run_traced(ring, nprocs=6)
        cm = comm_matrix(res.trace)
        assert cm.total_messages == res.stats.total_messages

    def test_collectives_counted_per_rank(self):
        def prog(rank, size):
            yield mpi.barrier()
            yield mpi.allreduce(nbytes=8, data=1, reduce_fn=lambda a, b: a + b)

        cm = comm_matrix(run_traced(prog, nprocs=3).trace)
        assert cm.collectives == [2, 2, 2]
        assert cm.total_messages == 0

    def test_top_pairs_sorted_by_bytes(self):
        def lopsided(rank, size):
            if rank == 0:
                yield mpi.send(dest=1, nbytes=10_000)
                yield mpi.send(dest=2, nbytes=10)
            elif rank in (1, 2):
                yield mpi.recv(source=0)
            yield mpi.barrier()

        cm = comm_matrix(run_traced(lopsided, nprocs=3).trace)
        pairs = cm.top_pairs(2)
        assert pairs[0][:2] == (0, 1)  # heaviest pair first
        assert pairs[0][3] == 10_000
        assert pairs[1][:2] == (0, 2)


class TestFormat:
    def test_small_world_full_matrix(self):
        cm = comm_matrix(run_traced(ring, nprocs=4).trace)
        text = format_comm_matrix(cm)
        assert "4 ranks" in text
        assert "d0" in text and "s3" in text  # tabulated
        assert "bytes per destination" in text

    def test_large_world_top_pairs(self):
        cm = comm_matrix(run_traced(ring, nprocs=4).trace)
        text = format_comm_matrix(cm, max_ranks=2)
        assert "top pairs by bytes" in text
        assert "->" in text
