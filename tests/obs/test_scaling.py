"""Tests for the scaling-loss detector."""

import pytest

from repro import mpi
from repro.machine import TESTING_MACHINE
from repro.obs import detect_scaling_loss, format_scaling_loss
from repro.sim import ExecMode, Simulator


def trace_at(prog, nprocs):
    return (
        Simulator(nprocs, prog, TESTING_MACHINE, mode=ExecMode.DE, collect_trace=True)
        .run()
        .trace
    )


def all_to_all_ish(rank, size):
    # per-rank compute shrinks with P (strong scaling), but every rank
    # joins size collectives — collective cost grows with P
    yield mpi.compute(ops=80_000 // size)
    for _ in range(size):
        yield mpi.allreduce(nbytes=64, data=1, reduce_fn=lambda a, b: a + b)


class TestDetection:
    def test_requires_two_counts(self):
        with pytest.raises(ValueError, match=">= 2 processor counts"):
            detect_scaling_loss({4: trace_at(all_to_all_ish, 4)})

    def test_collective_growth_outranks_compute(self):
        traces = {p: trace_at(all_to_all_ish, p) for p in (2, 4, 8)}
        report = detect_scaling_loss(traces)
        assert report.procs == (2, 4, 8)
        by_kind = {e.kind: e for e in report.entries}
        coll, comp = by_kind["collective"], by_kind["compute"]
        assert coll.is_loss and coll.added > 0
        assert coll.exponent is not None and coll.exponent > 0.5
        # aggregate compute stays flat under strong scaling, so the
        # collective kind must rank first by added seconds
        assert report.entries[0].kind == "collective"
        assert coll.added > comp.added
        assert report.losses[0].kind == "collective"

    def test_totals_cover_every_count(self):
        traces = {p: trace_at(all_to_all_ish, p) for p in (2, 8)}
        report = detect_scaling_loss(traces)
        for entry in report.entries:
            assert set(entry.totals) == {2, 8}

    def test_growth_ratio(self):
        traces = {p: trace_at(all_to_all_ish, p) for p in (2, 4)}
        report = detect_scaling_loss(traces)
        for entry in report.entries:
            if entry.growth is not None:
                assert entry.growth == pytest.approx(
                    entry.totals[4] / entry.totals[2]
                )


class TestFormat:
    def test_renders_table_and_verdict(self):
        traces = {p: trace_at(all_to_all_ish, p) for p in (2, 4, 8)}
        text = format_scaling_loss(detect_scaling_loss(traces))
        assert "P = [2, 4, 8]" in text
        assert "SCALING LOSS" in text
        assert "fastest-growing: 'collective'" in text
