"""Tests for the Perfetto / Chrome trace-event exporter."""

import json

import pytest

from repro import mpi
from repro.machine import TESTING_MACHINE
from repro.obs import (
    Tracer,
    perfetto_document,
    spans_to_events,
    trace_to_events,
    validate_perfetto,
    write_perfetto,
)
from repro.sim import ExecMode, Simulator


def traced_run(nprocs=4):
    def prog(rank, size):
        yield mpi.compute(ops=1000 * (rank + 1))
        h = yield mpi.isend(dest=(rank + 1) % size, nbytes=256)
        g = yield mpi.irecv(source=(rank - 1) % size)
        yield mpi.waitall(h, g)
        yield mpi.allreduce(nbytes=8, data=1, reduce_fn=lambda a, b: a + b)

    return Simulator(
        nprocs, prog, TESTING_MACHINE, mode=ExecMode.DE, collect_trace=True
    ).run()


class TestTraceExport:
    def test_schema_valid_and_serializable(self):
        res = traced_run()
        doc = perfetto_document(trace=res.trace)
        validate_perfetto(doc)  # does not raise
        json.loads(json.dumps(doc))  # round-trips

    def test_one_process_per_rank(self):
        res = traced_run(4)
        events = trace_to_events(res.trace)
        names = [
            ev for ev in events if ev["ph"] == "M" and ev["name"] == "process_name"
        ]
        assert {ev["args"]["name"] for ev in names} == {f"rank {r}" for r in range(4)}

    def test_complete_events_microseconds(self):
        res = traced_run()
        events = trace_to_events(res.trace)
        slices = [ev for ev in events if ev["ph"] == "X"]
        assert len(slices) == len(res.trace.events)
        by_eid = {ev["args"]["eid"]: ev for ev in slices}
        for tev in res.trace.events:
            ev = by_eid[tev.eid]
            assert ev["ts"] == pytest.approx(tev.start * 1e6)
            assert ev["dur"] == pytest.approx((tev.end - tev.start) * 1e6)
            assert ev["pid"] == tev.proc

    def test_flows_paired_per_dependency(self):
        res = traced_run()
        events = trace_to_events(res.trace)
        starts = [ev for ev in events if ev["ph"] == "s"]
        ends = [ev for ev in events if ev["ph"] == "f"]
        ndeps = sum(len(ev.deps) for ev in res.trace.events)
        assert len(starts) == len(ends) == ndeps
        assert {ev["id"] for ev in starts} == {ev["id"] for ev in ends}

    def test_nonblocking_completions_on_separate_track(self):
        res = traced_run()
        events = trace_to_events(res.trace)
        nb = [ev for ev in res.trace.events if ev.nonblocking]
        assert nb  # the program uses irecv, so completions exist
        by_eid = {ev["args"]["eid"]: ev for ev in events if ev["ph"] == "X"}
        assert all(by_eid[ev.eid]["tid"] == 1 for ev in nb)

    def test_write_validates_and_creates_file(self, tmp_path):
        res = traced_run()
        path = tmp_path / "out.json"
        doc = write_perfetto(path, trace=res.trace, meta={"app": "test"})
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(json.dumps(doc))
        assert on_disk["otherData"]["app"] == "test"


class TestSpanExport:
    def test_spans_rebased_to_zero(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        events = spans_to_events(tracer.spans, pid=9)
        slices = [ev for ev in events if ev["ph"] == "X"]
        assert len(slices) == 2
        assert min(ev["ts"] for ev in slices) == 0.0
        assert all(ev["pid"] == 9 for ev in events)

    def test_combined_document_hosts_after_ranks(self):
        res = traced_run(3)
        tracer = Tracer()
        tracer.enable()
        with tracer.span("sim.run"):
            pass
        doc = perfetto_document(trace=res.trace, spans=tracer.spans)
        validate_perfetto(doc)
        host = [
            ev for ev in doc["traceEvents"]
            if ev["ph"] == "M" and ev["args"].get("name") == "simulator (host clock)"
        ]
        assert host and host[0]["pid"] == 3  # host pid sits past the rank pids

    def test_empty_spans(self):
        assert spans_to_events([]) == []


class TestValidator:
    def test_rejects_non_document(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_perfetto(["not a dict"])

    def test_rejects_missing_dur(self):
        doc = {"traceEvents": [{"ph": "X", "name": "e", "pid": 0, "tid": 0, "ts": 1.0}]}
        with pytest.raises(ValueError, match="dur"):
            validate_perfetto(doc)

    def test_rejects_bad_phase(self):
        doc = {"traceEvents": [{"ph": "Z", "name": "e", "pid": 0, "ts": 0.0}]}
        with pytest.raises(ValueError, match="phase"):
            validate_perfetto(doc)

    def test_rejects_unpaired_flow(self):
        doc = {
            "traceEvents": [
                {"ph": "s", "name": "dep", "pid": 0, "ts": 0.0, "id": "a"},
            ]
        }
        with pytest.raises(ValueError, match="unpaired"):
            validate_perfetto(doc)

    def test_rejects_nonfinite_ts(self):
        doc = {
            "traceEvents": [
                {"ph": "X", "name": "e", "pid": 0, "ts": float("inf"), "dur": 1.0}
            ]
        }
        with pytest.raises(ValueError, match="timestamp"):
            validate_perfetto(doc)
