"""Tests for the metrics registry and its sinks."""

import json

import pytest

from repro.obs import METRICS, InMemorySink, JsonlSink, MetricsRegistry, TableSink


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    reg.enable()
    return reg


class TestInstruments:
    def test_counter_labeled_series(self, registry):
        c = registry.counter("events_total", "help text")
        c.inc(mode="de")
        c.inc(5, mode="de")
        c.inc(mode="am")
        assert c.value(mode="de") == 6
        assert c.value(mode="am") == 1
        assert c.value(mode="measured") == 0

    def test_counter_rejects_negative(self, registry):
        with pytest.raises(ValueError, match="negative"):
            registry.counter("c").inc(-1)

    def test_gauge(self, registry):
        g = registry.gauge("depth")
        g.set(3, stage="compile")
        g.set(7, stage="compile")
        assert g.value(stage="compile") == 7
        assert g.value(stage="other") is None

    def test_histogram_summary(self, registry):
        h = registry.histogram("elapsed")
        for v in (1.0, 3.0, 2.0):
            h.observe(v, mode="de")
        s = h.summary(mode="de")
        assert s["count"] == 3
        assert s["sum"] == pytest.approx(6.0)
        assert s["min"] == 1.0 and s["max"] == 3.0
        assert s["mean"] == pytest.approx(2.0)
        assert s["p50"] == 2.0

    def test_get_or_create_is_idempotent(self, registry):
        assert registry.counter("x") is registry.counter("x")

    def test_kind_clash_rejected(self, registry):
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")


class TestDisabled:
    def test_disabled_records_nothing(self):
        reg = MetricsRegistry()  # disabled by default
        reg.counter("c").inc()
        reg.gauge("g").set(1)
        reg.histogram("h").observe(1.0)
        assert reg.samples() == []  # no series were created at all
        assert reg.counter("c").value() == 0
        assert reg.histogram("h").summary()["count"] == 0

    def test_global_registry_disabled_by_default(self):
        assert METRICS.enabled is False


class TestSamplesAndSinks:
    def test_samples_shape(self, registry):
        registry.counter("c").inc(2, mode="de")
        registry.histogram("h").observe(1.5)
        samples = registry.samples()
        names = [s["name"] for s in samples]
        assert names == sorted(names)
        by_name = {s["name"]: s for s in samples}
        assert by_name["c"]["value"] == 2
        assert by_name["c"]["labels"] == {"mode": "de"}
        assert by_name["h"]["count"] == 1

    def test_in_memory_sink(self, registry):
        registry.counter("c").inc()
        sink = InMemorySink()
        registry.flush(sink)
        registry.flush(sink)
        assert len(sink.snapshots) == 2
        assert sink.snapshots[0][0]["name"] == "c"

    def test_jsonl_sink(self, registry, tmp_path):
        registry.counter("runs").inc(3, mode="am")
        registry.histogram("t").observe(0.5, mode="am")
        path = tmp_path / "metrics.jsonl"
        registry.flush(JsonlSink(path))
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert {line["name"] for line in lines} == {"runs", "t"}
        for line in lines:
            assert line["labels"] == {"mode": "am"}

    def test_jsonl_sink_appends_across_flushes(self, registry, tmp_path):
        path = tmp_path / "metrics.jsonl"
        sink = JsonlSink(path)
        registry.counter("runs").inc()
        registry.flush(sink)
        registry.flush(sink)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 2  # earlier flushes survive later ones

    def test_table_sink(self, registry, capsys):
        registry.counter("c").inc(4, mode="de")
        registry.histogram("h").observe(2.0)
        TableSink().write(registry.samples())
        out = capsys.readouterr().out
        assert "metric" in out and "c" in out and "mode=de" in out


class TestRecordRun:
    def _stats(self, **kw):
        from repro import mpi
        from repro.machine import TESTING_MACHINE
        from repro.sim import ExecMode, Simulator

        def prog(rank, size):
            yield mpi.send(dest=(rank + 1) % size, nbytes=64)
            yield mpi.recv(source=(rank - 1) % size)

        return Simulator(4, prog, TESTING_MACHINE, mode=ExecMode.DE, **kw).run().stats

    def test_record_run_from_simstats(self, registry):
        stats = self._stats()
        registry.record_run("mpi-sim-de", stats)
        assert registry.counter("sim_runs_total").value(mode="mpi-sim-de") == 1
        assert registry.counter("sim_messages_total").value(mode="mpi-sim-de") == 4
        h = registry.histogram("sim_elapsed_seconds").summary(mode="mpi-sim-de")
        assert h["count"] == 1 and h["max"] == stats.elapsed

    def test_fault_counters_reach_sink(self, registry):
        from repro import mpi
        from repro.machine import TESTING_MACHINE
        from repro.sim import ExecMode, FaultPlan, RetryPolicy, Simulator

        def prog(rank, size):
            yield mpi.send(dest=(rank + 1) % size, nbytes=64)
            yield mpi.recv(source=(rank - 1) % size)

        stats = Simulator(
            4, prog, TESTING_MACHINE, mode=ExecMode.DE,
            faults=FaultPlan(message_loss=0.5, seed=7),
            retry=RetryPolicy(max_attempts=10, backoff=1e-6),
        ).run().stats
        assert stats.total_retries > 0  # the scenario actually injected faults
        registry.record_run("mpi-sim-de", stats)
        sink = InMemorySink()
        registry.flush(sink)
        names = {s["name"] for s in sink.snapshots[0]}
        assert "sim_total_retries" in names

    def test_engine_records_when_enabled(self):
        METRICS.enable()
        try:
            self._stats()
        finally:
            METRICS.disable()
        assert METRICS.counter("sim_runs_total").value(mode="mpi-sim-de") == 1
        METRICS.reset()
