"""Tests for dual-clock span tracing."""

from repro.obs import TRACER, Tracer, format_spans
from repro.obs.spans import _NOOP


class TestTracer:
    def test_disabled_is_noop(self):
        tracer = Tracer()
        cm = tracer.span("anything", key="value")
        assert cm is _NOOP  # the cached singleton: no allocation per call
        with cm as sp:
            sp.set(ignored=1)
            sp.set_virtual(0.0, 1.0)
        assert tracer.spans == []

    def test_records_when_enabled(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("outer", mode="de") as sp:
            sp.set_virtual(0.0, 2.5)
        tracer.disable()
        assert len(tracer.spans) == 1
        span = tracer.spans[0]
        assert span.name == "outer"
        assert span.attrs == {"mode": "de"}
        assert span.host_duration >= 0.0
        assert span.virtual_duration == 2.5
        assert span.parent is None

    def test_nesting_tracks_parents(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("a") as a:
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        names = {sp.name: sp for sp in tracer.spans}
        assert names["b"].parent == a.sid
        assert names["c"].parent == names["b"].sid
        assert names["d"].parent == a.sid

    def test_enable_resets_by_default(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("old"):
            pass
        tracer.enable()
        assert tracer.spans == []

    def test_span_survives_exception(self):
        tracer = Tracer()
        tracer.enable()
        try:
            with tracer.span("failing"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert tracer.spans[0].host_end >= tracer.spans[0].host_start
        assert tracer._stack == []

    def test_virtual_duration_none_until_set(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("s") as sp:
            assert sp.virtual_duration is None


class TestEngineIntegration:
    def test_sim_run_span_carries_both_clocks(self):
        from repro import mpi
        from repro.machine import TESTING_MACHINE
        from repro.sim import ExecMode, Simulator

        def prog(rank, size):
            yield mpi.compute(ops=1000)
            yield mpi.barrier()

        TRACER.enable()
        try:
            result = Simulator(4, prog, TESTING_MACHINE, mode=ExecMode.DE).run()
        finally:
            TRACER.disable()
        runs = [sp for sp in TRACER.spans if sp.name == "sim.run"]
        assert len(runs) == 1
        assert runs[0].virtual_duration == result.elapsed
        assert runs[0].attrs["mode"] == "mpi-sim-de"
        assert runs[0].attrs["events"] == result.stats.total_events
        TRACER.reset()

    def test_global_tracer_disabled_by_default(self):
        assert TRACER.enabled is False


class TestFormatSpans:
    def test_renders_table(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("phase", detail="x") as sp:
            sp.set_virtual(0.0, 1.25)
            with tracer.span("inner"):
                pass
        text = format_spans(tracer.spans)
        assert "phase" in text
        assert "  inner" in text  # indented under its parent
        assert "1.250000" in text
        assert "detail=x" in text

    def test_empty(self):
        assert "span" in format_spans([])
