"""Tests for the critical-path analyzer."""

import pytest

from repro import mpi
from repro.machine import TESTING_MACHINE
from repro.obs import critical_path, format_critical_path
from repro.sim import ExecMode, Simulator


def run_traced(prog, nprocs=4, mode=ExecMode.DE):
    return Simulator(
        nprocs, prog, TESTING_MACHINE, mode=mode, collect_trace=True
    ).run()


def ring(rank, size):
    yield mpi.compute(ops=2000 * (rank + 1))
    yield mpi.send(dest=(rank + 1) % size, nbytes=512)
    yield mpi.recv(source=(rank - 1) % size)
    yield mpi.allreduce(nbytes=8, data=1, reduce_fn=lambda a, b: a + b)


def nonblocking_ring(rank, size):
    h = yield mpi.isend(dest=(rank + 1) % size, nbytes=256)
    g = yield mpi.irecv(source=(rank - 1) % size)
    yield mpi.compute(ops=5000)
    yield mpi.waitall(h, g)
    yield mpi.barrier()


class TestExactSum:
    @pytest.mark.parametrize("prog", [ring, nonblocking_ring])
    @pytest.mark.parametrize("nprocs", [2, 4, 7])
    def test_contributions_sum_to_elapsed(self, prog, nprocs):
        result = run_traced(prog, nprocs=nprocs)
        report = critical_path(result.trace)
        total = sum(step.contribution for step in report.steps)
        # the acceptance bar: critical-path decomposition accounts for
        # SimStats.elapsed to within 1e-9
        assert abs(total - result.stats.elapsed) < 1e-9
        assert abs(report.total - result.stats.elapsed) < 1e-9

    def test_by_kind_and_by_proc_sum_to_total(self):
        report = critical_path(run_traced(ring).trace)
        assert sum(report.by_kind.values()) == pytest.approx(report.total)
        assert sum(report.by_proc.values()) == pytest.approx(report.total)


class TestPathStructure:
    def test_contributions_nonnegative_and_ordered(self):
        report = critical_path(run_traced(nonblocking_ring).trace)
        assert all(step.contribution >= 0 for step in report.steps)
        ends = [step.end for step in report.steps]
        assert ends == sorted(ends, reverse=True)  # walks backwards in time

    def test_starts_at_last_event(self):
        result = run_traced(ring)
        report = critical_path(result.trace)
        last = max(result.trace.events, key=lambda e: (e.end, e.eid))
        assert report.steps[0].eid == last.eid

    def test_serial_chain_dominated_by_slowest_rank(self):
        # rank 2's compute is 100x everyone else's, so the path must run
        # through rank 2 before the final barrier
        def skew(rank, size):
            yield mpi.compute(ops=100_000 if rank == 2 else 1000)
            yield mpi.barrier()

        report = critical_path(run_traced(skew).trace)
        assert report.by_proc.get(2, 0.0) == pytest.approx(
            max(report.by_proc.values())
        )
        assert "compute" in report.by_kind

    def test_empty_trace(self):
        from repro.sim.trace import Trace

        report = critical_path(Trace(nprocs=2, events=[]))
        assert report.steps == () and report.total == 0.0


class TestFormat:
    def test_renders_sections(self):
        report = critical_path(run_traced(ring).trace)
        text = format_critical_path(report)
        assert "Critical path:" in text
        assert "by kind:" in text and "by rank:" in text
        assert "eid" in text

    def test_empty(self):
        from repro.obs.critical_path import CriticalPathReport

        text = format_critical_path(
            CriticalPathReport(steps=(), total=0.0, by_kind={}, by_proc={})
        )
        assert "0 event(s)" in text
