"""Telemetry capsules: serialization round-trips and capture isolation."""

import json
import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro import mpi
from repro.machine import TESTING_MACHINE
from repro.obs import METRICS, TRACER
from repro.obs.capsule import TelemetryCapsule, capture_run, load_capsules
from repro.sim import ExecMode, Simulator
from repro.util.atomic_io import append_jsonl


def simple_program(rank, size):
    yield mpi.compute(ops=1000)
    if size > 1:
        if rank == 0:
            yield mpi.send(dest=1, nbytes=64, tag=0)
        elif rank == 1:
            yield mpi.recv(source=0, tag=0)


# -- hypothesis round-trip -----------------------------------------------------

_attr_values = st.one_of(
    st.integers(-(2**31), 2**31), st.booleans(), st.text(max_size=20),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.none(),
)
_labels = st.dictionaries(
    st.text(st.characters(categories=("Ll",)), min_size=1, max_size=8),
    _attr_values.filter(lambda v: v is not None),
    max_size=3,
)


@st.composite
def capsules(draw):
    spans = []
    for sid in range(draw(st.integers(0, 4))):
        start = draw(st.floats(0, 1e6, allow_nan=False))
        spans.append(
            {
                "sid": sid,
                "name": draw(st.text(min_size=1, max_size=12)),
                "parent": draw(st.sampled_from([None] + list(range(sid)))) if sid else None,
                "host_start": start,
                "host_end": start + draw(st.floats(0, 10, allow_nan=False)),
                "virtual_start": draw(st.one_of(st.none(), st.floats(0, 100, allow_nan=False))),
                "virtual_end": draw(st.one_of(st.none(), st.floats(0, 100, allow_nan=False))),
                "attrs": draw(st.dictionaries(st.text(min_size=1, max_size=8), _attr_values, max_size=3)),
            }
        )
    metrics = []
    for name in draw(st.lists(st.text(min_size=1, max_size=10), max_size=3, unique=True)):
        kind = draw(st.sampled_from(["counter", "gauge", "histogram"]))
        sample = {"name": name, "type": kind, "labels": draw(_labels)}
        if kind == "histogram":
            values = draw(st.lists(st.floats(0, 1e3, allow_nan=False), min_size=1, max_size=5))
            sample.update(
                count=len(values), sum=sum(values), min=min(values),
                max=max(values), mean=sum(values) / len(values),
                p50=sorted(values)[len(values) // 2], values=values,
            )
        else:
            sample["value"] = draw(st.floats(0, 1e9, allow_nan=False))
        metrics.append(sample)
    return TelemetryCapsule(
        run_id=draw(st.text(min_size=1, max_size=16)),
        worker=draw(st.integers(1, 2**22)),
        wall_start=draw(st.floats(0, 2e9, allow_nan=False)),
        perf_start=draw(st.floats(0, 1e6, allow_nan=False)),
        outcome=draw(st.sampled_from([None, "ok", "deadlock", "timeout", "budget", "error"])),
        elapsed=draw(st.one_of(st.none(), st.floats(0, 1e4, allow_nan=False))),
        spans=spans,
        metrics=metrics,
        stats=draw(st.one_of(st.none(), st.just({"elapsed": 1.0, "total_events": 7}))),
        budget=draw(st.one_of(st.none(), st.just({"events": 3, "max_events": 10}))),
        flight=draw(st.one_of(st.none(), st.just({"format": 1, "events": [[0.0, 0, "resume"]]}))),
        attrs=draw(st.dictionaries(st.text(min_size=1, max_size=8), _attr_values, max_size=3)),
    )


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(capsules())
    def test_json_round_trip_is_lossless(self, cap):
        doc = json.loads(json.dumps(cap.to_json()))
        back = TelemetryCapsule.from_json(doc)
        assert back == cap

    @settings(max_examples=30, deadline=None)
    @given(cap=capsules())
    def test_journal_round_trip(self, cap):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "telemetry.jsonl"
            append_jsonl(path, {"type": "capsule", **cap.to_json()})
            append_jsonl(path, {"type": "header"})  # non-capsule records skipped
            loaded = load_capsules(path)
        assert loaded == [cap]

    def test_corrupt_capsule_raises_value_error(self):
        with pytest.raises(ValueError, match="corrupt telemetry capsule"):
            TelemetryCapsule.from_json({"worker": 1})  # no run_id

    def test_span_objects_rehydrate(self):
        cap = TelemetryCapsule(
            run_id="r", worker=1,
            spans=[
                {"sid": 0, "name": "root", "parent": None, "host_start": 1.0,
                 "host_end": 3.0, "virtual_start": 0.0, "virtual_end": 2.0,
                 "attrs": {"k": "v"}},
                {"sid": 1, "name": "child", "parent": 0, "host_start": 1.5,
                 "host_end": 2.0, "virtual_start": None, "virtual_end": None,
                 "attrs": {}},
            ],
        )
        roots = cap.root_spans()
        assert [sp.name for sp in roots] == ["root"]
        assert roots[0].host_duration == 2.0
        assert roots[0].virtual_duration == 2.0


class TestCaptureIsolation:
    def run_once(self, nprocs=2):
        return Simulator(
            nprocs, simple_program, TESTING_MACHINE, mode=ExecMode.DE
        ).run()

    def test_capture_records_spans_and_metrics(self):
        with capture_run("run-1", worker=42, mode="de") as cap:
            result = self.run_once()
            METRICS.record_run("de", result.stats)
        capsule = cap.finish(outcome="ok", stats=result.stats.to_dict())
        assert capsule.worker == 42
        assert capsule.outcome == "ok"
        assert capsule.elapsed == result.stats.to_dict()["elapsed"]
        assert capsule.spans, "engine spans should land in the capsule"
        names = {s["name"] for s in capsule.metrics}
        assert "sim_runs_total" in names

    def test_capture_restores_disabled_state(self):
        assert not TRACER.enabled and not METRICS.enabled
        with capture_run("run-1"):
            assert TRACER.enabled and METRICS.enabled
            self.run_once()
        assert not TRACER.enabled and not METRICS.enabled
        assert TRACER.spans == []

    def test_capture_suspends_enclosing_recording(self):
        TRACER.enable()
        METRICS.enable()
        try:
            with TRACER.span("outer"):
                METRICS.counter("outer_total").inc()
                with capture_run("inner-run") as cap:
                    self.run_once()
                # outer state is back, untouched by the inner capture
                assert METRICS.counter("outer_total").value() == 1
                inner_names = {s["name"] for s in cap.capsule.spans}
                assert "outer" not in inner_names
            assert [s.name for s in TRACER.spans] == ["outer"]
        finally:
            TRACER.disable()
            METRICS.disable()

    def test_captured_root_span_telescopes_to_elapsed(self):
        # the contract the merged timeline relies on: each capsule's
        # root span carries the run's virtual duration
        with capture_run("run-1") as cap:
            with TRACER.span("campaign.run") as span:
                result = self.run_once()
                span.set_virtual(0.0, result.stats.elapsed)
        capsule = cap.finish(outcome="ok", stats=result.stats.to_dict())
        roots = capsule.root_spans()
        assert len(roots) == 1
        assert roots[0].virtual_duration == pytest.approx(capsule.elapsed)
