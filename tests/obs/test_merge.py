"""Merging per-run telemetry capsules into one campaign-level trace."""

import json

import pytest

from repro.obs import validate_perfetto
from repro.obs.capsule import TelemetryCapsule
from repro.obs.merge import (
    aggregate_metrics,
    format_campaign_timeline,
    merge_capsules,
    write_merged_perfetto,
)


def make_capsule(run_id, worker, wall_start, perf_start=100.0, outcome="ok",
                 elapsed=1.5, metrics=(), events=40):
    return TelemetryCapsule(
        run_id=run_id,
        worker=worker,
        wall_start=wall_start,
        perf_start=perf_start,
        outcome=outcome,
        elapsed=elapsed,
        spans=[
            {"sid": 0, "name": "campaign.run", "parent": None,
             "host_start": perf_start, "host_end": perf_start + 0.25,
             "virtual_start": 0.0, "virtual_end": elapsed,
             "attrs": {"run_id": run_id}},
            {"sid": 1, "name": "sim.run", "parent": 0,
             "host_start": perf_start + 0.01, "host_end": perf_start + 0.2,
             "virtual_start": 0.0, "virtual_end": elapsed, "attrs": {}},
        ],
        metrics=list(metrics),
        stats={"elapsed": elapsed, "total_events": events},
    )


class TestMergeCapsules:
    def test_one_track_per_worker_and_run(self):
        caps = [
            make_capsule("run-a", worker=101, wall_start=1000.0),
            make_capsule("run-b", worker=202, wall_start=1000.2),
            make_capsule("run-c", worker=101, wall_start=1000.4),
        ]
        doc = merge_capsules(caps)
        meta = [ev for ev in doc["traceEvents"] if ev["ph"] == "M"]
        procs = {ev["pid"] for ev in meta if ev["name"] == "process_name"}
        assert procs == {101, 202}
        threads = [(ev["pid"], ev["tid"]) for ev in meta
                   if ev["name"] == "thread_name"]
        assert len(threads) == 3
        assert len(set(threads)) == 3  # one distinct track per run

    def test_spans_rebased_to_common_wall_clock(self):
        # two workers with wildly different perf_counter epochs but
        # overlapping wall-clock windows must land on a shared timeline
        caps = [
            make_capsule("run-a", worker=1, wall_start=5000.0, perf_start=7.0),
            make_capsule("run-b", worker=2, wall_start=5000.1, perf_start=9999.0),
        ]
        doc = merge_capsules(caps)
        xs = {ev["args"]["run_id"]: ev for ev in doc["traceEvents"]
              if ev["ph"] == "X" and ev["name"] == "campaign.run"}
        assert xs["run-a"]["ts"] == pytest.approx(0.0)
        assert xs["run-b"]["ts"] == pytest.approx(0.1e6, rel=1e-6)

    def test_merged_doc_passes_validator(self):
        caps = [make_capsule(f"run-{i}", worker=10 + (i % 2), wall_start=100.0 + i)
                for i in range(4)]
        doc = merge_capsules(caps, meta={"campaign": "c"})
        validate_perfetto(doc)
        assert doc["otherData"]["merged_capsules"] == 4
        assert doc["otherData"]["workers"] == 2
        assert doc["otherData"]["campaign"] == "c"

    def test_write_merged_perfetto_is_valid_json_on_disk(self, tmp_path):
        caps = [make_capsule("run-a", worker=1, wall_start=10.0)]
        out = tmp_path / "campaign.perfetto.json"
        write_merged_perfetto(out, caps)
        doc = json.loads(out.read_text())
        validate_perfetto(doc)

    def test_empty_capsule_list_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            merge_capsules([])


class TestAggregateMetrics:
    def test_counters_sum_and_histograms_merge_exactly(self):
        caps = [
            make_capsule("run-a", 1, 10.0, metrics=[
                {"name": "sim_runs_total", "type": "counter",
                 "labels": {"mode": "de"}, "value": 2},
                {"name": "run_seconds", "type": "histogram", "labels": {},
                 "count": 2, "sum": 3.0, "min": 1.0, "max": 2.0,
                 "mean": 1.5, "p50": 1.0, "values": [1.0, 2.0]},
            ]),
            make_capsule("run-b", 2, 11.0, metrics=[
                {"name": "sim_runs_total", "type": "counter",
                 "labels": {"mode": "de"}, "value": 3},
                {"name": "run_seconds", "type": "histogram", "labels": {},
                 "count": 1, "sum": 5.0, "min": 5.0, "max": 5.0,
                 "mean": 5.0, "p50": 5.0, "values": [5.0]},
            ]),
        ]
        samples = {(s["name"], s["type"]): s for s in aggregate_metrics(caps)}
        assert samples[("sim_runs_total", "counter")]["value"] == 5
        hist = samples[("run_seconds", "histogram")]
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(8.0)
        assert hist["min"] == 1.0 and hist["max"] == 5.0


class TestTimeline:
    def test_rows_ordered_by_start_time(self):
        caps = [
            make_capsule("later", 1, wall_start=20.0, outcome="deadlock"),
            make_capsule("early", 2, wall_start=10.0),
        ]
        text = format_campaign_timeline(caps)
        assert text.index("early") < text.index("later")
        assert "deadlock" in text
