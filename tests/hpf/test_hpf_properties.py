"""Property-based tests of the HPF front-end.

Random (*, BLOCK) data-parallel programs must compile to valid,
runnable message-passing programs whose communication structure follows
directly from the declared stencils.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hpf import HpfBuilder, Stencil, compile_hpf
from repro.ir import IrecvStmt, IsendStmt, make_factory, walk
from repro.machine import TESTING_MACHINE
from repro.sim import ExecMode, Simulator
from repro.symbolic import Var


@st.composite
def stencils(draw):
    n_offsets = draw(st.integers(1, 5))
    offs = {(0, 0)}
    for _ in range(n_offsets):
        offs.add((draw(st.integers(-2, 2)), draw(st.integers(-2, 2))))
    return Stencil(frozenset(offs))


@st.composite
def hpf_programs(draw):
    n = Var("n")
    b = HpfBuilder(f"hprop{draw(st.integers(0, 10**6))}", params=("n",), rows=n, cols=n)
    arrays = [f"A{i}" for i in range(draw(st.integers(1, 3)))]
    for name in arrays:
        b.array(name)
    decls = {}
    n_stmts = draw(st.integers(1, 4))
    loop = draw(st.booleans())
    ctx = b.do("t", 1, draw(st.integers(1, 3))) if loop else None
    if ctx:
        ctx.__enter__()
    for i in range(n_stmts):
        kind = draw(st.sampled_from(["forall", "reduce"]))
        if kind == "forall":
            reads = {
                name: draw(stencils())
                for name in draw(st.sets(st.sampled_from(arrays), min_size=1))
            }
            writes = tuple(draw(st.sets(st.sampled_from(arrays), min_size=1)))
            b.forall(f"f{i}", reads=reads, writes=writes,
                     ops_per_point=draw(st.integers(1, 20)))
            decls[f"f{i}"] = reads
        else:
            b.reduction(draw(st.sampled_from(arrays)),
                        kind=draw(st.sampled_from(["max", "min", "sum"])))
    if ctx:
        ctx.__exit__(None, None, None)
    return b.build(), decls


@given(hpf_programs(), st.integers(1, 5), st.integers(8, 40))
@settings(max_examples=30, deadline=None)
def test_compiled_program_validates_and_runs(data, nprocs, n):
    hpf, _ = data
    prog = compile_hpf(hpf)  # .validate() runs inside
    res = Simulator(
        nprocs, make_factory(prog, {"n": n}), TESTING_MACHINE, mode=ExecMode.DE
    ).run()
    assert res.elapsed >= 0.0


@given(hpf_programs())
@settings(max_examples=50, deadline=None)
def test_exchanges_iff_stencil_reaches_neighbours(data):
    hpf, decls = data
    prog = compile_hpf(hpf)
    comm_arrays = {s.array for s in walk(prog.body) if isinstance(s, (IsendStmt, IrecvStmt))}
    expect = set()
    for reads in decls.values():
        for name, stencil in reads.items():
            if stencil.ghost_width > 0:
                expect.add(name)
    assert comm_arrays == expect


@given(hpf_programs(), st.integers(2, 5), st.integers(10, 30))
@settings(max_examples=30, deadline=None)
def test_ghost_allocation_covers_widest_stencil(data, nprocs, n):
    hpf, decls = data
    prog = compile_hpf(hpf)
    need: dict[str, int] = {}
    for reads in decls.values():
        for name, stencil in reads.items():
            need[name] = max(need.get(name, 0), stencil.ghost_width)
    env = {"n": n, "P": nprocs, "myid": 0}
    import math

    block = math.ceil(n / nprocs)
    for name, decl in prog.arrays.items():
        size = int(decl.size.evaluate(env))
        assert size == n * (block + 2 * need.get(name, 0))


@given(hpf_programs(), st.integers(2, 4), st.integers(12, 24))
@settings(max_examples=20, deadline=None)
def test_compiles_through_backend(data, nprocs, n):
    """Every front-end output survives the full condense/slice/codegen."""
    from repro.codegen import compile_program

    hpf, _ = data
    compiled = compile_program(compile_hpf(hpf))
    res = Simulator(
        nprocs,
        make_factory(
            compiled.simplified, {"n": n},
            wparams={w: 1e-8 for w in compiled.w_param_names},
        ),
        TESTING_MACHINE,
        mode=ExecMode.AM,
    ).run()
    assert res.elapsed >= 0.0
