"""Tests for the mini-HPF front-end (the dhpf substrate)."""

import pytest

from repro.codegen import compile_program
from repro.hpf import (
    FIVE_POINT,
    NINE_POINT,
    POINTWISE,
    HpfBuilder,
    Stencil,
    compile_hpf,
    jacobi2d_hpf,
    tomcatv_hpf,
)
from repro.ir import CompBlock, IrecvStmt, IsendStmt, make_factory, walk
from repro.machine import IBM_SP, TESTING_MACHINE
from repro.sim import ExecMode, Simulator
from repro.symbolic import Var
from repro.workflow import ModelingWorkflow


class TestStencils:
    def test_ghost_widths(self):
        assert POINTWISE.ghost_width == 0
        assert FIVE_POINT.ghost_width == 1
        assert NINE_POINT.ghost_width == 1
        assert Stencil.of((0, -3), (0, 2)).ghost_width == 3

    def test_interior_margin(self):
        assert NINE_POINT.interior_margin == (1, 1)
        assert POINTWISE.interior_margin == (0, 0)

    def test_union(self):
        s = POINTWISE | FIVE_POINT
        assert s.ghost_width == 1


class TestModel:
    def test_builder_validates_arrays(self):
        b = HpfBuilder("bad", params=("n",), rows=Var("n"), cols=Var("n"))
        b.forall("f", reads={"GHOST": POINTWISE}, writes=())
        with pytest.raises(ValueError, match="GHOST"):
            b.build()

    def test_duplicate_array(self):
        b = HpfBuilder("dup", params=("n",), rows=Var("n"), cols=Var("n"))
        b.array("A")
        with pytest.raises(ValueError):
            b.array("A")

    def test_only_star_block_supported(self):
        b = HpfBuilder("d", params=("n",), rows=Var("n"), cols=Var("n"))
        with pytest.raises(NotImplementedError):
            b.array("A", dist=("BLOCK", "BLOCK"))

    def test_unknown_reduction(self):
        b = HpfBuilder("d", params=("n",), rows=Var("n"), cols=Var("n"))
        b.array("A")
        with pytest.raises(ValueError):
            b.reduction("A", kind="prod")

    def test_unclosed_do_rejected(self):
        b = HpfBuilder("d", params=("n",), rows=Var("n"), cols=Var("n"))
        ctx = b.do("i", 1, 2)
        ctx.__enter__()
        with pytest.raises(RuntimeError, match="unclosed"):
            b.build()


class TestCompilation:
    def test_jacobi_compiles_and_validates(self):
        prog = compile_hpf(jacobi2d_hpf())
        assert prog.meta["compiled_from_hpf"] == "jacobi2d"
        assert set(prog.arrays) == {"U", "Unew"}

    def test_ghost_exchange_generated_for_stencil_reads(self):
        prog = compile_hpf(jacobi2d_hpf())
        sends = [s for s in walk(prog.body) if isinstance(s, IsendStmt)]
        recvs = [s for s in walk(prog.body) if isinstance(s, IrecvStmt)]
        # one exchange (2 sends + 2 recvs) per iteration for U; copyback
        # is pointwise and needs none
        assert len(sends) == 2 and len(recvs) == 2
        assert all(s.array == "U" for s in sends)

    def test_ghost_columns_allocated(self):
        prog = compile_hpf(jacobi2d_hpf())
        env = {"n": 64, "P": 4, "myid": 0}
        u = int(prog.arrays["U"].size.evaluate(env))
        unew = int(prog.arrays["Unew"].size.evaluate(env))
        assert u == 64 * (16 + 2)  # block + one ghost column each side
        assert unew == 64 * 16  # written only: no ghosts needed

    def test_owner_computes_work_expression(self):
        prog = compile_hpf(jacobi2d_hpf())
        relax = next(s for s in walk(prog.body) if isinstance(s, CompBlock) and s.name == "relax")
        # interior margin 1 in rows; local columns on a 64-grid over 4 procs
        env = {"n": 64, "P": 4, "myid": 1, "hpf_b": 16, "cols_local": 16, "k": 1}
        assert relax.work.evaluate(env) == (64 - 2) * 16

    def test_runs_on_simulator(self):
        prog = compile_hpf(jacobi2d_hpf())
        res = Simulator(
            4, make_factory(prog, {"n": 64, "iters": 3}), TESTING_MACHINE, mode=ExecMode.DE
        ).run()
        # 3 iterations x one U-exchange x (2(P-1)) messages
        assert res.stats.total_messages == 3 * 2 * 3
        assert all(p.collectives == 3 for p in res.stats.procs)

    def test_clipped_blocks_on_uneven_division(self):
        prog = compile_hpf(jacobi2d_hpf())
        res = Simulator(
            3, make_factory(prog, {"n": 10, "iters": 1}), TESTING_MACHINE, mode=ExecMode.DE
        ).run()
        # blocks are 4,4,2: compute time differs across ranks
        times = {round(p.compute_time, 12) for p in res.stats.procs}
        assert len(times) == 2


class TestFullPipelineFromHpf:
    """The paper's headline integration: HPF in, predictions out."""

    def test_hpf_tomcatv_through_entire_workflow(self):
        prog = compile_hpf(tomcatv_hpf())
        wf = ModelingWorkflow(
            prog, IBM_SP, calib_inputs={"n": 256, "itmax": 3}, calib_nprocs=8
        )
        wf.calibrate()
        inputs = {"n": 512, "itmax": 3}
        meas = wf.run_measured(inputs, 16)
        am = wf.run_am(inputs, 16)
        err = abs(am.elapsed - meas.elapsed) / meas.elapsed
        assert err < 0.17, f"HPF-compiled Tomcatv AM error {err:.1%}"
        # and the memory win survives the front-end
        de = wf.run_de(inputs, 16)
        assert de.memory.app_bytes / am.memory.app_bytes > 50

    def test_compiler_condenses_hpf_output(self):
        prog = compile_hpf(tomcatv_hpf())
        compiled = compile_program(prog)
        assert len(compiled.plan.regions) >= 2
        assert compiled.simplified.arrays == {}

    def test_hpf_structure_matches_handwritten_tomcatv(self):
        """The HPF-compiled Tomcatv exchanges the same ghost traffic per
        iteration as the hand-written MPI version models."""
        from repro.apps import build_tomcatv

        hpf_prog = compile_hpf(tomcatv_hpf())
        hand = build_tomcatv()
        inputs = {"n": 128, "itmax": 2}
        a = Simulator(4, make_factory(hpf_prog, inputs), TESTING_MACHINE).run()
        bres = Simulator(4, make_factory(hand, inputs), TESTING_MACHINE).run()
        # X and Y each need one ghost column both ways -> 2 exchanges/iter
        # in the HPF version vs the hand-written single fused exchange of
        # 2 columns; total bytes per iteration match
        assert a.stats.total_bytes == bres.stats.total_bytes
