"""Integration tests for the Fig. 2 modeling workflow and validation."""

import pytest

from repro.apps import build_tomcatv, tomcatv_inputs
from repro.machine import IBM_SP
from repro.sim import ExecMode
from repro.workflow import (
    ModelingWorkflow,
    format_bytes,
    format_table,
    format_validation,
    validate,
)


@pytest.fixture(scope="module")
def wf():
    return ModelingWorkflow(
        build_tomcatv(), IBM_SP, calib_inputs=tomcatv_inputs(128, itmax=3), calib_nprocs=4
    )


class TestWorkflow:
    def test_calibration_cached(self, wf):
        a = wf.calibrate()
        b = wf.calibrate()
        assert a is b
        assert set(a.wparams) == {"w_residual", "w_tridiag_solve", "w_mesh_update"}

    def test_wparams_positive(self, wf):
        assert all(v > 0 for v in wf.wparams.values())

    def test_compiled_cached(self, wf):
        assert wf.compiled is wf.compiled

    def test_modes_tagged(self, wf):
        inputs = tomcatv_inputs(64, itmax=2)
        assert wf.run_measured(inputs, 4).mode is ExecMode.MEASURED
        assert wf.run_de(inputs, 4).mode is ExecMode.DE
        assert wf.run_am(inputs, 4).mode is ExecMode.AM

    def test_am_error_small(self, wf):
        """The headline result: AM within the paper's error envelope."""
        inputs = tomcatv_inputs(128, itmax=3)
        for nprocs in (2, 4, 8):
            meas = wf.run_measured(inputs, nprocs)
            am = wf.run_am(inputs, nprocs)
            err = abs(am.elapsed - meas.elapsed) / meas.elapsed
            assert err < 0.17, f"AM error {err:.1%} at P={nprocs} exceeds the paper's 17%"

    def test_am_memory_reduction(self, wf):
        inputs = tomcatv_inputs(256, itmax=1)
        de = wf.run_de(inputs, 4)
        am = wf.run_am(inputs, 4)
        assert de.memory.app_bytes / am.memory.app_bytes > 100

    def test_measured_noise_varies_with_seed(self, wf):
        inputs = tomcatv_inputs(64, itmax=2)
        a = wf.run_measured(inputs, 4, seed=1)
        b = wf.run_measured(inputs, 4, seed=2)
        assert a.elapsed != b.elapsed


class TestValidate:
    def test_series(self, wf):
        configs = [(tomcatv_inputs(128, itmax=2), p) for p in (2, 4)]
        series = validate(wf, configs, name="tomcatv-test")
        assert len(series.points) == 2
        assert series.max_err_am < 20
        assert series.points[0].err_de is not None

    def test_skip_de(self, wf):
        configs = [(tomcatv_inputs(64, itmax=2), 2)]
        series = validate(wf, configs, include_de=False)
        assert series.points[0].de is None
        assert series.points[0].err_de is None

    def test_labels(self, wf):
        configs = [(tomcatv_inputs(64, itmax=2), 2)]
        series = validate(wf, configs, labels=["cfg-a"])
        assert series.points[0].label == "cfg-a"


class TestReporting:
    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, None]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "-" in lines[-1]  # None renders as '-'

    def test_format_validation(self, wf):
        configs = [(tomcatv_inputs(64, itmax=2), 2)]
        series = validate(wf, configs)
        text = format_validation(series)
        assert "MPI-SIM-AM" in text and "max AM error" in text

    def test_format_bytes(self):
        assert format_bytes(500) == "500B"
        assert format_bytes(2_000) == "2.0KB"
        assert format_bytes(3_500_000) == "3.5MB"
        assert format_bytes(7_200_000_000) == "7.2GB"
