"""Tests for the fault-sweep workflow mode and resilience reporting."""

import pytest

from repro.apps import build_tomcatv, tomcatv_inputs
from repro.machine import IBM_SP
from repro.sim import CrashFault, DeadlockError, ExecMode, FaultPlan, RetryPolicy
from repro.workflow import (
    ModelingWorkflow,
    fault_sweep,
    format_fault_sweep,
    format_resilience,
    write_fault_sweep_csv,
)

INPUTS = tomcatv_inputs(64, itmax=2)


@pytest.fixture(scope="module")
def wf():
    return ModelingWorkflow(
        build_tomcatv(), IBM_SP, calib_inputs=INPUTS, calib_nprocs=2
    )


class TestRunFaulty:
    def test_empty_plan_matches_plain_de(self, wf):
        plain = wf.run_de(INPUTS, 4)
        faulty = wf.run_faulty(INPUTS, 4, plan=FaultPlan(), mode=ExecMode.DE)
        assert faulty.elapsed == plain.elapsed  # bit-identical

    def test_empty_plan_matches_plain_am(self, wf):
        plain = wf.run_am(INPUTS, 4)
        faulty = wf.run_faulty(INPUTS, 4, plan=FaultPlan(), mode=ExecMode.AM)
        assert faulty.elapsed == plain.elapsed

    def test_crash_raises_with_report(self, wf):
        plan = FaultPlan(crashes=(CrashFault(1, 0.0),))
        with pytest.raises(DeadlockError) as ei:
            wf.run_faulty(INPUTS, 4, plan=plan)
        assert ei.value.report is not None
        assert ei.value.report.crashed_ranks == (1,)

    def test_mode_tagged(self, wf):
        res = wf.run_faulty(INPUTS, 4, plan=FaultPlan(), mode=ExecMode.MEASURED)
        assert res.mode is ExecMode.MEASURED


class TestFaultSweep:
    @pytest.fixture(scope="class")
    def series(self, wf):
        return fault_sweep(
            wf, INPUTS, 4, [0.05, 0.15],
            retry=RetryPolicy(max_attempts=16, backoff=1e-4),
            name="tomcatv-sweep",
        )

    def test_baseline_prepended(self, series):
        assert series.points[0].loss_rate == 0.0
        assert series.points[0].retries == 0
        assert series.baseline == series.points[0].elapsed

    def test_elapsed_monotone(self, series):
        done = [p.elapsed for p in series.points if p.elapsed is not None]
        assert done == sorted(done)
        assert done[-1] > done[0]

    def test_counters_grow_with_loss(self, series):
        retries = [p.retries for p in series.points if not p.deadlocked]
        assert retries[0] == 0 and retries[-1] > 0

    def test_slowdown_pct(self, series):
        base = series.baseline
        assert series.points[0].slowdown_pct(base) == pytest.approx(0.0)
        last = series.points[-1]
        if not last.deadlocked:
            assert last.slowdown_pct(base) > 0.0

    def test_deadlocked_point_recorded_not_raised(self, wf):
        # certain loss with no retry: the run stalls, the sweep survives
        series = fault_sweep(wf, INPUTS, 4, [1.0], name="stall")
        stalled = series.points[-1]
        assert stalled.deadlocked and stalled.elapsed is None
        assert stalled.slowdown_pct(series.baseline) is None

    def test_format(self, series):
        text = format_fault_sweep(series)
        assert "Fault sweep: tomcatv-sweep" in text
        assert "loss rate" in text and "slowdown %" in text

    def test_format_marks_deadlock(self, wf):
        series = fault_sweep(wf, INPUTS, 4, [1.0], name="stall")
        assert "DEADLOCK" in format_fault_sweep(series)

    def test_csv(self, series, tmp_path):
        import csv

        path = tmp_path / "sweep.csv"
        write_fault_sweep_csv(series, path)
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows[0][0] == "loss_rate"
        assert len(rows) == len(series.points) + 1


class TestFormatResilience:
    def test_counters_shown(self, wf):
        plan = FaultPlan(seed=2, message_loss=0.1)
        res = wf.run_faulty(
            INPUTS, 4, plan=plan, retry=RetryPolicy(max_attempts=16)
        )
        text = format_resilience(res, title="Resilience report: tomcatv (de)")
        assert "Resilience report" in text
        assert "retries" in text and "messages lost" in text
        assert "crashed ranks     : none" in text
