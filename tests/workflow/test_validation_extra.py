"""Extra coverage for validation containers and the sweep apps' workflows."""

import math

import pytest

from repro.workflow import ValidationPoint, ValidationSeries


class TestValidationSeries:
    def _series(self):
        return ValidationSeries(
            "s",
            [
                ValidationPoint("a", 2, measured=1.0, de=0.95, am=0.90),
                ValidationPoint("b", 4, measured=0.5, de=0.49, am=0.56),
            ],
        )

    def test_error_properties(self):
        s = self._series()
        assert s.points[0].err_am == pytest.approx(10.0)
        assert s.points[1].err_am == pytest.approx(12.0)
        assert s.points[0].err_de == pytest.approx(5.0)

    def test_max_and_mean(self):
        s = self._series()
        assert s.max_err_am == pytest.approx(12.0)
        assert s.mean_err_am == pytest.approx(11.0)
        assert s.max_err_de == pytest.approx(5.0)

    def test_de_skipped(self):
        s = ValidationSeries("s", [ValidationPoint("a", 2, measured=1.0, de=None, am=1.1)])
        assert s.points[0].err_de is None
        assert math.isnan(s.max_err_de)
