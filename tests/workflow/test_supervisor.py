"""Supervised execution runtime: hang kills, poison quarantine, degradation.

The contract under test (docs/robustness.md): supervision may change
*how fast* a campaign learns about sick workers, never *what* it
computes — a wedged run is journaled ``hung`` within the heartbeat
deadline, a repeat offender is quarantined ``poison`` with a forensics
artifact while the rest of the campaign completes, pool breakage
degrades to in-process execution, and in every case ``results.csv``
for the healthy cells is byte-identical to a sequential run.
"""

import json
import multiprocessing
import os
import signal
import time
from types import SimpleNamespace

import pytest

import repro.workflow.supervisor as supervisor
from repro.sim.checkpoint import RunCheckpoint
from repro.workflow.campaign import (
    CHECKPOINT_DIR_NAME,
    QUARANTINE_DIR_NAME,
    CampaignInterrupted,
    CampaignRunner,
    _cli_resolver,
    expand_grid,
)
from repro.workflow.supervisor import minimize_poison

from .test_parallel import run_campaign, tiny_grid

pytestmark = pytest.mark.skipif(
    multiprocessing.get_start_method(allow_none=False) != "fork",
    reason="supervisor tests monkeypatch worker hooks, which requires fork",
)


def journal_docs(runner):
    return [json.loads(line) for line in
            runner.journal_path.read_text().splitlines()]


def _sigint_probe(conn):  # pragma: no cover - runs in a child process
    """Satellite regression: a quieted worker must survive its own SIGINT."""
    from repro.workflow.parallel import _quiet_worker

    _quiet_worker()
    os.kill(os.getpid(), signal.SIGINT)
    conn.send("alive")
    conn.close()


class TestWorkerSignalMask:
    def test_quiet_worker_ignores_sigint(self):
        ctx = multiprocessing.get_context("fork")
        parent, child = ctx.Pipe()
        proc = ctx.Process(target=_sigint_probe, args=(child,), daemon=True)
        proc.start()
        child.close()
        assert parent.poll(10), "worker died instead of ignoring SIGINT"
        assert parent.recv() == "alive"
        proc.join(timeout=10)
        assert proc.exitcode == 0
        parent.close()


class TestHangDetection:
    def test_wedged_run_is_killed_and_classified_hung(self, tmp_path, monkeypatch):
        """A run that stops beating is journaled ``hung`` within the
        heartbeat deadline, retried, and the campaign stays byte-identical."""
        flag = tmp_path / "wedged-once"
        real = supervisor._execute_cell

        def wedge_once(runner, conn, spec, index, config):
            if spec.nprocs == 3 and not flag.exists():
                flag.write_text("x")
                conn.send(("hb", spec.run_id, {
                    "events": 123, "virtual_time": 1.5, "wall_seconds": 0.2,
                    "flight_tail": [[1.0, 0, "send"]], "run_id": spec.run_id,
                }))
                time.sleep(60)  # killed long before this returns
            return real(runner, conn, spec, index, config)

        monkeypatch.setattr(supervisor, "_execute_cell", wedge_once)
        grid = tiny_grid(supervision={"heartbeat_timeout": 0.5})
        t0 = time.monotonic()
        runner, report = run_campaign(tmp_path, grid=grid, jobs=2)
        assert report.complete and not report.interrupted
        assert time.monotonic() - t0 < 30, "hang must not wait out a wall budget"
        hung = [d for d in journal_docs(runner)
                if d.get("type") == "run" and d.get("outcome") == "hung"]
        assert len(hung) == 1
        assert "no heartbeat" in hung[0]["error"]
        # the last cursor and its staleness ride the strike record
        assert hung[0]["cursor"]["events"] == 123
        assert hung[0]["cursor"]["staleness_s"] >= 0.5
        # the worker is dead, but its heartbeat carried the flight tail
        assert hung[0]["flight"]["events"] == [[1.0, 0, "send"]]
        assert hung[0]["flight"]["meta"]["source"] == "heartbeat"
        # last record wins: the retry succeeded
        assert all(r.outcome == "ok" for r in report.records.values())
        _, ref = run_campaign(tmp_path, sub="ref", jobs=1)
        assert (tmp_path / "out" / "results.csv").read_bytes() == \
               (tmp_path / "ref" / "results.csv").read_bytes()


def _crash_nprocs3(runner, conn, spec, index, config):
    """Poison stand-in: one spec hard-kills every worker it touches."""
    if spec.nprocs == 3:
        os._exit(1)
    return supervisor.__dict__["_real_execute_cell"](runner, conn, spec, index, config)


class TestPoisonQuarantine:
    def test_repeat_killer_is_quarantined_and_campaign_completes(
            self, tmp_path, monkeypatch):
        real = supervisor._execute_cell
        monkeypatch.setitem(supervisor.__dict__, "_real_execute_cell", real)
        monkeypatch.setattr(supervisor, "_execute_cell", _crash_nprocs3)
        grid = tiny_grid(supervision={"poison_threshold": 2})
        runner, report = run_campaign(tmp_path, grid=grid, jobs=2)
        assert report.complete
        assert report.outcomes["poison"] == 1 and report.outcomes["ok"] == 2
        docs = journal_docs(runner)
        strikes = [d for d in docs if d.get("type") == "run"
                   and d.get("outcome") == "error"
                   and "worker process died" in (d.get("error") or "")]
        assert strikes, "each worker death must be journaled before quarantine"
        poison = [d for d in docs if d.get("outcome") == "poison"]
        assert len(poison) == 1 and poison[0]["attempts"] == 2
        # quarantine artifact: spec identity + reproducer attempt
        q_path = runner.out_dir / QUARANTINE_DIR_NAME / f"{poison[0]['run_id']}.json"
        assert q_path.exists()
        q = json.loads(q_path.read_text())
        assert q["strikes"] == 2 and q["spec"]["nprocs"] == 3
        assert "reproducer" in q  # tried, even if the crash was synthetic
        # poison is terminal: a resume re-runs nothing
        resumed = runner.execute(resume=True)
        assert resumed.complete and resumed.executed == 0
        assert resumed.skipped == 3

    def test_poison_row_lands_in_results_csv(self, tmp_path, monkeypatch):
        real = supervisor._execute_cell
        monkeypatch.setitem(supervisor.__dict__, "_real_execute_cell", real)
        monkeypatch.setattr(supervisor, "_execute_cell", _crash_nprocs3)
        grid = tiny_grid(supervision={"poison_threshold": 2})
        runner, report = run_campaign(tmp_path, grid=grid, jobs=2)
        assert report.complete
        text = (runner.out_dir / "results.csv").read_text()
        assert "poison" in text


def _crash_once(runner, conn, spec, index, config):
    flag = supervisor.__dict__["_crash_once_flag"]
    if spec.nprocs == 3 and not os.path.exists(flag):
        with open(flag, "w") as fh:
            fh.write("x")
        os._exit(1)
    return supervisor.__dict__["_real_execute_cell"](runner, conn, spec, index, config)


class TestCrashRetry:
    def test_crash_once_then_recover_is_byte_identical(self, tmp_path, monkeypatch):
        monkeypatch.setitem(supervisor.__dict__, "_real_execute_cell",
                            supervisor._execute_cell)
        monkeypatch.setitem(supervisor.__dict__, "_crash_once_flag",
                            str(tmp_path / "crashed-once"))
        monkeypatch.setattr(supervisor, "_execute_cell", _crash_once)
        runner, report = run_campaign(tmp_path, jobs=2)
        assert report.complete
        assert all(r.outcome == "ok" for r in report.records.values())
        strikes = [d for d in journal_docs(runner)
                   if d.get("type") == "run" and d.get("outcome") == "error"]
        assert len(strikes) == 1
        assert "worker process died" in strikes[0]["error"]
        assert strikes[0]["error"].count("run ") == 1  # names the cell
        _, ref = run_campaign(tmp_path, sub="ref", jobs=1)
        assert (tmp_path / "out" / "results.csv").read_bytes() == \
               (tmp_path / "ref" / "results.csv").read_bytes()


class TestGracefulDegradation:
    def test_unspawnable_pool_degrades_to_inline_execution(
            self, tmp_path, monkeypatch):
        """When workers cannot even be spawned, the supervisor falls back
        to in-process sequential execution with byte-identical outputs."""

        class FailingCtx:
            def Pipe(self):
                raise OSError("no more processes")

        monkeypatch.setattr(
            supervisor, "multiprocessing",
            SimpleNamespace(get_context=lambda: FailingCtx()),
        )
        monkeypatch.setattr(supervisor, "RESPAWN_BACKOFF", 0.001)
        runner, report = run_campaign(tmp_path, jobs=2)
        assert report.complete
        assert all(r.outcome == "ok" for r in report.records.values())
        _, ref = run_campaign(tmp_path, sub="ref", jobs=1)
        assert (tmp_path / "out" / "results.csv").read_bytes() == \
               (tmp_path / "ref" / "results.csv").read_bytes()


class TestMinimizePoison:
    def spec(self):
        return expand_grid(tiny_grid()).specs[0]

    def test_reproducing_failure_is_minimized(self):
        info = minimize_poison(self.spec(), "testing", _cli_resolver,
                               probe=lambda candidate: True)
        assert info["minimized"] is True
        assert info["final_stmts"] <= info["original_stmts"]
        assert info["checks"] >= 1
        assert isinstance(info["program"], str) and info["program"]

    def test_non_reproducing_failure_is_declined_with_note(self):
        info = minimize_poison(self.spec(), "testing", _cli_resolver,
                               probe=lambda candidate: False)
        assert info["minimized"] is False
        assert "declined" in info["note"]

    def test_resolver_failure_is_recorded_not_raised(self):
        def bad_resolver(app):
            raise RuntimeError("registry unavailable")

        info = minimize_poison(self.spec(), "testing", bad_resolver)
        assert info["minimized"] is False
        assert "resolver failed" in info["note"]


class TestCampaignCheckpointing:
    def grid(self):
        return tiny_grid(supervision={"checkpoint_interval": 10})

    @pytest.fixture(autouse=True)
    def _eager_checkpoints(self, monkeypatch):
        """Tiny runs finish in < 1s wall; drop the write throttle."""
        from repro.sim.checkpoint import CHECKPOINT

        monkeypatch.setattr(CHECKPOINT, "min_interval_s", 0.0)

    def test_interrupted_run_leaves_cursor_and_resume_fast_forwards(
            self, tmp_path, monkeypatch):
        config = expand_grid(self.grid())
        real = CampaignRunner._simulate
        state = {"n": 0}

        def sim_then_die(self, spec, wall_credit=0.0):
            result = real(self, spec, wall_credit)
            state["n"] += 1
            if state["n"] == 1:
                raise CampaignInterrupted(signal.SIGTERM)
            return result

        monkeypatch.setattr(CampaignRunner, "_simulate", sim_then_die)
        runner = CampaignRunner(config, tmp_path / "out")
        report = runner.execute(jobs=1)
        assert report.interrupted and not report.complete
        ck_path = (tmp_path / "out" / CHECKPOINT_DIR_NAME
                   / f"{config.specs[0].run_id}.json")
        assert ck_path.exists(), "the killed attempt must leave its cursor"
        monkeypatch.setattr(CampaignRunner, "_simulate", real)

        # spy on the cursor the resume loads
        loaded = {}
        orig_load = CampaignRunner._load_cursor

        def spying_load(self, spec):
            path, cursor = orig_load(self, spec)
            loaded[spec.run_id] = cursor
            return path, cursor

        monkeypatch.setattr(CampaignRunner, "_load_cursor", spying_load)
        resumed = runner.execute(resume=True, jobs=1)
        assert resumed.complete and not resumed.interrupted
        assert loaded[config.specs[0].run_id] is not None, \
            "the resume must fast-forward from the cursor"
        assert all(r.outcome == "ok" and r.attempts == 1
                   for r in resumed.records.values())
        assert not ck_path.exists(), "terminal records clear their cursor"
        _, ref = run_campaign(tmp_path, sub="ref", jobs=1)
        assert (tmp_path / "out" / "results.csv").read_bytes() == \
               (tmp_path / "ref" / "results.csv").read_bytes()

    def test_tampered_cursor_restarts_from_zero(self, tmp_path):
        config = expand_grid(self.grid())
        spec = config.specs[0]
        ck_dir = tmp_path / "out" / CHECKPOINT_DIR_NAME
        ck_dir.mkdir(parents=True)
        bogus = RunCheckpoint(
            run_id=spec.run_id, config_hash=config.config_hash,
            seed=spec.seed, events=10, virtual_time=-1.0, wall_seconds=0.5,
        )
        (ck_dir / f"{spec.run_id}.json").write_text(
            json.dumps(bogus.to_json()))
        runner = CampaignRunner(config, tmp_path / "out")
        report = runner.execute(jobs=1)
        assert report.complete
        # the divergent replay consumed neither a retry nor the outcome
        assert all(r.outcome == "ok" and r.attempts == 1
                   for r in report.records.values())
        _, ref = run_campaign(tmp_path, sub="ref", jobs=1)
        assert (tmp_path / "out" / "results.csv").read_bytes() == \
               (tmp_path / "ref" / "results.csv").read_bytes()

    def test_foreign_cursor_is_discarded(self, tmp_path):
        config = expand_grid(self.grid())
        spec = config.specs[0]
        ck_dir = tmp_path / "out" / CHECKPOINT_DIR_NAME
        ck_dir.mkdir(parents=True)
        foreign = RunCheckpoint(
            run_id=spec.run_id, config_hash="someone-elses-campaign",
            seed=spec.seed, events=10, virtual_time=1.0, wall_seconds=0.5,
        )
        ck_path = ck_dir / f"{spec.run_id}.json"
        ck_path.write_text(json.dumps(foreign.to_json()))
        runner = CampaignRunner(config, tmp_path / "out")
        report = runner.execute(jobs=1)
        assert report.complete
        assert all(r.outcome == "ok" for r in report.records.values())
