"""Campaign telemetry: capsules journaled per run, merged Perfetto trace.

The acceptance contract: a ``--jobs N`` campaign journals one telemetry
capsule per run, fuses them into a merged Perfetto timeline with one
track group per worker process and one track per run, the per-run root
spans telescope to ``SimStats.elapsed`` — and none of it perturbs the
determinism contract (results.csv stays byte-identical to a run with
telemetry off).
"""

import json

from repro.obs import load_capsules, validate_perfetto
from repro.workflow.campaign import (
    MERGED_PERFETTO_NAME,
    TELEMETRY_NAME,
    CampaignRunner,
    expand_grid,
)


def tiny_grid(**overrides):
    grid = {
        "name": "tiny",
        "machine": "testing",
        "app": "sample_nearest_neighbor",
        "modes": ["de"],
        "nprocs": [2, 3, 4],
        "inputs": {"grain": 1000, "msg": 512, "iters": 2},
    }
    grid.update(overrides)
    return grid


def run_campaign(tmp_path, grid=None, sub="out", telemetry=True,
                 progress=None, **execute_kw):
    runner = CampaignRunner(expand_grid(grid or tiny_grid()), tmp_path / sub,
                            telemetry=telemetry, progress=progress)
    return runner, runner.execute(**execute_kw)


def journal_records(runner):
    docs = [json.loads(line) for line in
            runner.journal_path.read_text().splitlines()]
    return {d["run_id"]: d for d in docs if d.get("type") == "run"}


class TestSequentialTelemetry:
    def test_capsule_journaled_per_run(self, tmp_path):
        runner, report = run_campaign(tmp_path)
        assert report.complete
        capsules = load_capsules(runner.out_dir / TELEMETRY_NAME)
        assert len(capsules) == 3
        assert {c.run_id for c in capsules} == set(journal_records(runner))
        assert all(c.outcome == "ok" for c in capsules)

    def test_root_spans_telescope_to_sim_elapsed(self, tmp_path):
        runner, _ = run_campaign(tmp_path)
        records = journal_records(runner)
        for cap in load_capsules(runner.out_dir / TELEMETRY_NAME):
            roots = cap.root_spans()
            assert len(roots) == 1
            elapsed = records[cap.run_id]["stats"]["elapsed"]
            assert abs(roots[0].virtual_duration - elapsed) < 1e-9
            assert abs(cap.elapsed - elapsed) < 1e-9

    def test_merged_perfetto_written_and_valid(self, tmp_path):
        runner, _ = run_campaign(tmp_path)
        doc = json.loads((runner.out_dir / MERGED_PERFETTO_NAME).read_text())
        validate_perfetto(doc)
        assert doc["otherData"]["merged_capsules"] == 3
        assert doc["otherData"]["campaign"] == "tiny"
        assert doc["otherData"]["workers"] == 1  # sequential: one process

    def test_telemetry_does_not_perturb_results(self, tmp_path):
        _, on = run_campaign(tmp_path, sub="on", telemetry=True)
        _, off = run_campaign(tmp_path, sub="off", telemetry=False)
        assert on.complete and off.complete
        assert (tmp_path / "on" / "results.csv").read_bytes() == \
               (tmp_path / "off" / "results.csv").read_bytes()
        assert not (tmp_path / "off" / TELEMETRY_NAME).exists()
        assert not (tmp_path / "off" / MERGED_PERFETTO_NAME).exists()

    def test_progress_callback_sees_every_run(self, tmp_path):
        calls = []
        run_campaign(
            tmp_path,
            progress=lambda spec, rec, done, total: calls.append(
                (spec.run_id, rec.outcome, done, total)),
        )
        assert len(calls) == 3
        assert [c[2] for c in calls] == [1, 2, 3]
        assert all(c[3] == 3 and c[1] == "ok" for c in calls)


class TestParallelTelemetry:
    def test_jobs4_merged_trace_has_one_track_per_worker_and_run(self, tmp_path):
        runner, report = run_campaign(tmp_path, jobs=4)
        assert report.complete
        capsules = load_capsules(runner.out_dir / TELEMETRY_NAME)
        assert len(capsules) == 3
        doc = json.loads((runner.out_dir / MERGED_PERFETTO_NAME).read_text())
        validate_perfetto(doc)
        meta = [ev for ev in doc["traceEvents"] if ev["ph"] == "M"]
        worker_pids = {ev["pid"] for ev in meta if ev["name"] == "process_name"}
        assert worker_pids == {c.worker for c in capsules}
        threads = {(ev["pid"], ev["tid"]) for ev in meta
                   if ev["name"] == "thread_name"}
        assert len(threads) == 3  # one track per run
        # every capsule's events landed under its own worker's track group
        spans = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
        assert {ev["pid"] for ev in spans} <= worker_pids

    def test_jobs4_root_spans_telescope_and_results_match_sequential(self, tmp_path):
        par_runner, par = run_campaign(tmp_path, sub="par", jobs=4)
        _, seq = run_campaign(tmp_path, sub="seq", jobs=1)
        assert par.complete and seq.complete
        assert (tmp_path / "par" / "results.csv").read_bytes() == \
               (tmp_path / "seq" / "results.csv").read_bytes()
        records = journal_records(par_runner)
        for cap in load_capsules(par_runner.out_dir / TELEMETRY_NAME):
            (root,) = cap.root_spans()
            elapsed = records[cap.run_id]["stats"]["elapsed"]
            assert abs(root.virtual_duration - elapsed) < 1e-9


class TestFailureTelemetry:
    def test_deadlock_run_journals_flight_dump_and_capsule(self, tmp_path):
        # rank 0 crashes at t=0: its neighbours block forever -> deadlock
        grid = tiny_grid(nprocs=[3],
                         fault_plans=[{"crashes": [{"rank": 0, "time": 0.0}]}])
        runner, report = run_campaign(tmp_path, grid=grid, sub="faulty")
        assert report.complete
        (doc,) = journal_records(runner).values()
        assert doc["outcome"] == "deadlock"
        dump = doc["flight"]
        assert isinstance(dump, dict) and dump["events"]
        assert dump["wait_chain"]["crashed"], "crash must appear in the chain"
        (cap,) = load_capsules(runner.out_dir / TELEMETRY_NAME)
        assert cap.outcome == "deadlock"
        assert cap.flight == dump

    def test_resume_dedupes_capsules_latest_wins(self, tmp_path):
        runner, report = run_campaign(tmp_path, max_runs=1)
        assert report.stopped and not report.complete
        resumed = runner.execute(resume=True)
        assert resumed.complete and resumed.skipped == 1
        capsules = load_capsules(runner.out_dir / TELEMETRY_NAME)
        assert len({c.run_id for c in capsules}) == len(capsules) == 3
        doc = json.loads((runner.out_dir / MERGED_PERFETTO_NAME).read_text())
        assert doc["otherData"]["merged_capsules"] == 3
