"""Tests for CSV export of validation series."""

import csv

from repro.workflow import ValidationPoint, ValidationSeries, write_validation_csv


def test_csv_roundtrip(tmp_path):
    series = ValidationSeries(
        "demo",
        [
            ValidationPoint("4", 4, measured=1.0, de=0.98, am=0.9),
            ValidationPoint("8", 8, measured=0.5, de=None, am=0.52),
        ],
    )
    path = tmp_path / "v.csv"
    write_validation_csv(series, path)
    with open(path) as fh:
        rows = list(csv.DictReader(fh))
    assert len(rows) == 2
    assert rows[0]["nprocs"] == "4"
    assert abs(float(rows[0]["err_am_pct"]) - 10.0) < 1e-9
    assert rows[1]["de_s"] == ""  # skipped DE renders empty
