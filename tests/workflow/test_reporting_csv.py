"""Tests for CSV export of validation series and per-rank statistics."""

import csv

import pytest

from repro.sim import SimStats
from repro.sim.stats import ProcessStats
from repro.workflow import (
    ValidationPoint,
    ValidationSeries,
    write_stats_csv,
    write_validation_csv,
)


def test_csv_roundtrip(tmp_path):
    series = ValidationSeries(
        "demo",
        [
            ValidationPoint("4", 4, measured=1.0, de=0.98, am=0.9),
            ValidationPoint("8", 8, measured=0.5, de=None, am=0.52),
        ],
    )
    path = tmp_path / "v.csv"
    write_validation_csv(series, path)
    with open(path) as fh:
        rows = list(csv.DictReader(fh))
    assert len(rows) == 2
    assert rows[0]["nprocs"] == "4"
    assert abs(float(rows[0]["err_am_pct"]) - 10.0) < 1e-9
    assert rows[1]["de_s"] == ""  # skipped DE renders empty


def test_stats_csv_includes_fault_counters(tmp_path):
    stats = SimStats([
        ProcessStats(0, compute_time=1.0, finish_time=2.0, messages_sent=3,
                     events=10, host_cost=0.1),
        ProcessStats(1, compute_time=2.0, finish_time=3.5, messages_sent=1,
                     events=5, host_cost=0.2, retries=4, timeouts=1,
                     crashed=True, crash_time=3.5),
    ])
    path = tmp_path / "stats.csv"
    write_stats_csv(stats, path)
    with open(path) as fh:
        rows = list(csv.DictReader(fh))
    assert len(rows) == 2
    assert rows[0]["rank"] == "0"
    # PR 1's fault counters must survive into the report layer
    assert rows[1]["retries"] == "4"
    assert rows[1]["timeouts"] == "1"
    assert rows[1]["crashed"] == "True"
    assert float(rows[1]["finish_time"]) == pytest.approx(3.5)


def test_stats_csv_from_faulty_run(tmp_path):
    from repro import mpi
    from repro.machine import TESTING_MACHINE
    from repro.sim import ExecMode, FaultPlan, RetryPolicy, Simulator

    def prog(rank, size):
        yield mpi.send(dest=(rank + 1) % size, nbytes=64)
        yield mpi.recv(source=(rank - 1) % size)

    res = Simulator(
        4, prog, TESTING_MACHINE, mode=ExecMode.DE,
        faults=FaultPlan(message_loss=0.5, seed=7),
        retry=RetryPolicy(max_attempts=10, backoff=1e-6),
    ).run()
    path = tmp_path / "stats.csv"
    write_stats_csv(res.stats, path)
    with open(path) as fh:
        rows = list(csv.DictReader(fh))
    assert sum(int(r["retries"]) for r in rows) == res.stats.total_retries > 0
