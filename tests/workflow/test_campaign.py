"""Tests for resumable campaigns: journaling, resume, budgets, outcomes."""

import json
import os
import signal

import pytest

from repro.workflow.campaign import (
    JOURNAL_NAME,
    RESULTS_NAME,
    CampaignError,
    CampaignRunner,
    RunSpec,
    expand_grid,
    format_campaign_report,
    load_grid,
)


def tiny_grid(**overrides):
    """A fast three-run grid on the noise-free testing machine."""
    grid = {
        "name": "tiny",
        "machine": "testing",
        "app": "sample_nearest_neighbor",
        "modes": ["de"],
        "nprocs": [2, 3, 4],
        "inputs": {"grain": 1000, "msg": 512, "iters": 2},
    }
    grid.update(overrides)
    return grid


def run_campaign(tmp_path, grid=None, sub="out", **execute_kw):
    runner = CampaignRunner(expand_grid(grid or tiny_grid()), tmp_path / sub)
    return runner, runner.execute(**execute_kw)


class TestGridExpansion:
    def test_cross_product(self):
        cfg = expand_grid(tiny_grid(modes=["de", "am"], fault_plans=[None, {"message_loss": 0.1}]))
        assert len(cfg.specs) == 3 * 2 * 2

    def test_missing_app_rejected(self):
        grid = tiny_grid()
        del grid["app"]
        with pytest.raises(CampaignError, match="missing 'app'"):
            expand_grid(grid)

    def test_unknown_keys_rejected(self):
        with pytest.raises(CampaignError, match="unknown keys"):
            expand_grid(tiny_grid(frobnicate=True))

    def test_bad_mode_rejected(self):
        with pytest.raises(CampaignError, match="unknown mode"):
            expand_grid(tiny_grid(modes=["turbo"]))

    def test_bad_fault_plan_rejected(self):
        with pytest.raises(CampaignError, match="bad fault plan"):
            expand_grid(tiny_grid(fault_plans=[{"message_loss": 7.0}]))

    def test_bad_nprocs_rejected(self):
        with pytest.raises(CampaignError, match="processor count"):
            expand_grid(tiny_grid(nprocs=[0]))

    def test_duplicate_cells_rejected(self):
        with pytest.raises(CampaignError, match="duplicate runs"):
            expand_grid(tiny_grid(nprocs=[2, 2]))

    def test_load_grid_errors_are_campaign_errors(self, tmp_path):
        with pytest.raises(CampaignError, match="cannot read"):
            load_grid(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(CampaignError, match="not valid JSON"):
            load_grid(bad)


class TestIdentity:
    def test_run_id_is_content_hash(self):
        a = RunSpec("app", "de", 4, (("n", 64),))
        b = RunSpec("app", "de", 4, (("n", 64),))
        c = RunSpec("app", "de", 8, (("n", 64),))
        assert a.run_id == b.run_id
        assert a.run_id != c.run_id

    def test_config_hash_tracks_budgets(self):
        plain = expand_grid(tiny_grid())
        budgeted = expand_grid(tiny_grid(budgets={"max_events": 10}))
        assert plain.config_hash != budgeted.config_hash
        assert plain.config_hash == expand_grid(tiny_grid()).config_hash


class TestServingCalibrationGroups:
    """calib_from_spec: the calibration is a pure function of the spec."""

    def _runner(self, tmp_path, calib_procs=None):
        cfg = expand_grid(tiny_grid(modes=["am"], nprocs=[2, 4]))
        cfg.calib_from_spec = True
        cfg.calib_procs = calib_procs
        return CampaignRunner(cfg, tmp_path / "out"), cfg.specs

    def test_default_calib_nprocs_follows_each_spec(self, tmp_path):
        # an nprocs sweep with no pinned calib_procs: whichever cell
        # executes first must not donate its calibration to the others
        runner, (s2, s4) = self._runner(tmp_path)
        wf2 = runner._workflow_for(s2)
        wf4 = runner._workflow_for(s4)
        assert wf2 is not wf4
        assert (wf2.calib_nprocs, wf4.calib_nprocs) == (2, 4)

    def test_pinned_calib_procs_shares_one_group(self, tmp_path):
        runner, (s2, s4) = self._runner(tmp_path, calib_procs=3)
        wf2 = runner._workflow_for(s2)
        assert runner._workflow_for(s4) is wf2
        assert wf2.calib_nprocs == 3

    def test_grid_mode_still_groups_by_app_and_seed(self, tmp_path):
        cfg = expand_grid(tiny_grid(modes=["am"], nprocs=[2, 4]))
        runner = CampaignRunner(cfg, tmp_path / "out")
        s2, s4 = cfg.specs
        assert runner._workflow_for(s4) is runner._workflow_for(s2)


class TestExecution:
    def test_full_campaign_completes(self, tmp_path):
        runner, report = run_campaign(tmp_path)
        assert report.complete and not report.interrupted
        assert report.executed == 3 and report.skipped == 0
        assert report.outcomes["ok"] == 3
        assert (tmp_path / "out" / JOURNAL_NAME).exists()
        assert report.results_path == tmp_path / "out" / RESULTS_NAME
        assert report.results_path.exists()
        assert "results written" in format_campaign_report(report)

    def test_existing_journal_requires_resume(self, tmp_path):
        run_campaign(tmp_path)
        with pytest.raises(CampaignError, match="already exists"):
            run_campaign(tmp_path)

    def test_resume_without_journal_warns_and_runs(self, tmp_path, caplog, monkeypatch):
        import logging

        # the CLI may have installed a non-propagating handler on "repro"
        monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)
        with caplog.at_level(logging.WARNING, logger="repro.workflow.campaign"):
            _, report = run_campaign(tmp_path, resume=True)
        assert report.complete
        assert any("starting fresh" in r.getMessage() for r in caplog.records)


class TestKillAndResume:
    def test_resume_skips_completed_and_is_bit_identical(self, tmp_path):
        # uninterrupted reference campaign
        _, ref = run_campaign(tmp_path, sub="ref")
        # "crash" after 1 journal record, then resume
        _, partial = run_campaign(tmp_path, sub="crashed", max_runs=1)
        assert partial.stopped and not partial.complete
        assert len(partial.records) == 1
        _, resumed = run_campaign(tmp_path, sub="crashed", resume=True)
        assert resumed.complete
        assert resumed.skipped == 1  # the pre-crash run was not re-executed
        assert resumed.executed == 2
        # bit-identical artifacts: results.csv and the journal's run records
        assert (
            (tmp_path / "crashed" / RESULTS_NAME).read_bytes()
            == (tmp_path / "ref" / RESULTS_NAME).read_bytes()
        )
        ref_runs = _run_records(tmp_path / "ref" / JOURNAL_NAME)
        res_runs = _run_records(tmp_path / "crashed" / JOURNAL_NAME)
        assert res_runs == ref_runs

    def test_resume_is_bit_identical_for_calibrating_mode(self, tmp_path):
        # 'am' calibrates once per (app, seed).  The calibration basis must
        # be a function of the grid — not of whichever spec executes first —
        # or a resume (which skips completed runs) calibrates differently
        # and diverges from the uninterrupted campaign.  IBM-SP's noisy
        # ground truth makes the wparams sensitive to the calibration
        # nprocs, so any divergence shows up in the results bytes.
        grid = tiny_grid(modes=["am"], machine="IBM-SP")
        _, ref = run_campaign(tmp_path, grid=grid, sub="ref")
        assert ref.complete and ref.outcomes["ok"] == 3
        _, partial = run_campaign(tmp_path, grid=grid, sub="crashed", max_runs=1)
        assert partial.stopped and len(partial.records) == 1
        _, resumed = run_campaign(tmp_path, grid=grid, sub="crashed", resume=True)
        assert resumed.complete and resumed.skipped == 1
        assert (
            (tmp_path / "crashed" / RESULTS_NAME).read_bytes()
            == (tmp_path / "ref" / RESULTS_NAME).read_bytes()
        )

    def test_resume_after_truncated_campaign_journal(self, tmp_path):
        # simulate a harder crash: journal cut back to header + first record
        _, _ = run_campaign(tmp_path, sub="cut")
        journal = tmp_path / "cut" / JOURNAL_NAME
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:2]) + "\n")
        (tmp_path / "cut" / RESULTS_NAME).unlink()
        _, resumed = run_campaign(tmp_path, sub="cut", resume=True)
        assert resumed.complete and resumed.executed == 2 and resumed.skipped == 1

    def test_config_hash_mismatch_refused(self, tmp_path):
        run_campaign(tmp_path)
        other = CampaignRunner(
            expand_grid(tiny_grid(nprocs=[2, 3])), tmp_path / "out"
        )
        with pytest.raises(CampaignError, match="different campaign"):
            other.execute(resume=True)

    def test_corrupt_journal_is_a_campaign_error(self, tmp_path):
        run_campaign(tmp_path)
        journal = tmp_path / "out" / JOURNAL_NAME
        lines = journal.read_text().splitlines()
        lines.insert(1, "{torn record")  # mid-journal: unrecoverable
        journal.write_text("\n".join(lines) + "\n")
        with pytest.raises(CampaignError, match="corrupt journal"):
            run_campaign(tmp_path, resume=True)

    def test_torn_final_journal_line_is_dropped_on_resume(self, tmp_path):
        # A crash can tear only the *final* line; the loader drops it
        # with a warning, and the resume re-runs just that lost record.
        _, report = run_campaign(tmp_path)
        journal = tmp_path / "out" / JOURNAL_NAME
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2])
        _, resumed = run_campaign(tmp_path, resume=True)
        assert resumed.complete
        assert resumed.executed == 1  # exactly the torn record re-ran
        assert {r.outcome for r in resumed.records.values()} == {
            r.outcome for r in report.records.values()
        }

    def test_sigterm_interrupts_between_runs_and_resumes(self, tmp_path):
        cfg = expand_grid(tiny_grid())
        runner = CampaignRunner(cfg, tmp_path / "out")
        handler_before = signal.getsignal(signal.SIGTERM)
        real = runner._simulate
        calls = []

        def deliver_sigterm_on_second_run(spec):
            calls.append(spec.run_id)
            if len(calls) == 2:
                os.kill(os.getpid(), signal.SIGTERM)  # handler raises immediately
            return real(spec)

        runner._simulate = deliver_sigterm_on_second_run
        report = runner.execute()
        assert report.interrupted and not report.complete
        assert len(report.records) == 1  # run 2 was in flight, not journaled
        docs = [json.loads(line)
                for line in (tmp_path / "out" / JOURNAL_NAME).read_text().splitlines()]
        assert docs[-1]["type"] == "interrupted"
        assert docs[-1]["signal"] == signal.SIGTERM
        assert "INTERRUPTED" in format_campaign_report(report)
        # previous handlers restored
        assert signal.getsignal(signal.SIGTERM) == handler_before
        # resume finishes the remaining runs
        resumed = CampaignRunner(cfg, tmp_path / "out").execute(resume=True)
        assert resumed.complete and resumed.executed == 2 and resumed.skipped == 1


class TestOutcomeClassification:
    def test_event_budget_classified_as_budget(self, tmp_path):
        _, report = run_campaign(tmp_path, grid=tiny_grid(budgets={"max_events": 5}))
        assert report.outcomes["budget"] == 3
        rec = next(iter(report.records.values()))
        assert rec.budget_kind == "events"
        assert rec.stats is not None  # partial stats journaled

    def test_wall_budget_classified_as_timeout(self, tmp_path):
        _, report = run_campaign(
            tmp_path, grid=tiny_grid(budgets={"max_wall_seconds": 1e-9})
        )
        assert report.outcomes["timeout"] == 3
        assert all(r.budget_kind == "wall_time" for r in report.records.values())

    def test_crash_fault_plan_classified_as_deadlock(self, tmp_path):
        grid = tiny_grid(
            nprocs=[3],
            fault_plans=[{"crashes": [{"rank": 0, "time": 0.0}]}],
        )
        _, report = run_campaign(tmp_path, grid=grid)
        assert report.outcomes["deadlock"] == 1
        rec = next(iter(report.records.values()))
        assert rec.error  # the deadlock diagnosis is journaled

    def test_transient_error_retried_with_backoff(self, tmp_path):
        cfg = expand_grid(tiny_grid(nprocs=[2], retries=2, backoff=0.01))
        sleeps = []
        runner = CampaignRunner(cfg, tmp_path / "out", sleep=sleeps.append)
        real = runner._simulate
        attempts = []

        def flaky(spec):
            attempts.append(spec.run_id)
            if len(attempts) < 3:
                raise OSError("transient filesystem hiccup")
            return real(spec)

        runner._simulate = flaky
        report = runner.execute()
        assert report.outcomes["ok"] == 1
        rec = next(iter(report.records.values()))
        assert rec.attempts == 3
        assert sleeps == [0.01, 0.02]  # exponential backoff

    def test_persistent_error_recorded_after_retries(self, tmp_path):
        cfg = expand_grid(tiny_grid(nprocs=[2], retries=1, backoff=0.0))
        runner = CampaignRunner(cfg, tmp_path / "out", sleep=lambda s: None)

        def always_fails(spec):
            raise OSError("stuck")

        runner._simulate = always_fails
        report = runner.execute()
        rec = next(iter(report.records.values()))
        assert rec.outcome == "error" and rec.attempts == 2
        assert "OSError" in rec.error
        # a later resume re-runs the failed cell (now healthy)
        resumed = CampaignRunner(cfg, tmp_path / "out").execute(resume=True)
        assert resumed.outcomes["ok"] == 1 and resumed.complete


def _run_records(journal_path):
    docs = [json.loads(line) for line in journal_path.read_text().splitlines()]
    return [d for d in docs if d["type"] == "run"]
