"""Tests for the parallel run executor: determinism, interrupts, recovery.

The contract under test (docs/robustness.md): ``--jobs N`` may change
*when* runs execute and in what order records reach the journal, but
never *what* is computed — ``results.csv`` is byte-identical to a
sequential run, resumes interoperate freely between jobs settings, and
a worker crash degrades to an ordinary resumable interruption.
"""

import json
import os
import signal

import pytest

from repro.workflow.campaign import (
    CampaignError,
    CampaignInterrupted,
    CampaignRunner,
    expand_grid,
)
from repro.workflow.parallel import (
    WorkflowSpec,
    calibrate_many,
    resolve_jobs,
)
from repro.workflow.validation import validate


def tiny_grid(**overrides):
    grid = {
        "name": "tiny",
        "machine": "testing",
        "app": "sample_nearest_neighbor",
        "modes": ["de"],
        "nprocs": [2, 3, 4],
        "inputs": {"grain": 1000, "msg": 512, "iters": 2},
    }
    grid.update(overrides)
    return grid


def run_campaign(tmp_path, grid=None, sub="out", **execute_kw):
    runner = CampaignRunner(expand_grid(grid or tiny_grid()), tmp_path / sub)
    return runner, runner.execute(**execute_kw)


def _crash_cell(index, spec):  # pragma: no cover - runs inside a worker
    """Submitted in place of parallel._campaign_cell: kills its worker.

    Must be a named module-level function — the pool pickles submitted
    callables by qualified name, and an unpicklable stand-in would wedge
    the executor's feeder thread instead of crashing a worker.
    """
    os._exit(1)


def journal_runs(runner):
    """The journal's run records as {run_id: outcome-relevant fields}."""
    docs = [json.loads(line) for line in
            runner.journal_path.read_text().splitlines()]
    return {
        d["run_id"]: (d["outcome"], d["elapsed"], d["stats"], d["error"])
        for d in docs if d.get("type") == "run"
    }


class TestResolveJobs:
    def test_default_and_zero(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1  # all cores

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            resolve_jobs(-2)


class TestParallelCampaign:
    def test_results_csv_byte_identical(self, tmp_path):
        _, seq_report = run_campaign(tmp_path, sub="seq", jobs=1)
        _, par_report = run_campaign(tmp_path, sub="par", jobs=4)
        assert seq_report.complete and par_report.complete
        assert par_report.executed == seq_report.executed == 3
        seq = (tmp_path / "seq" / "results.csv").read_bytes()
        par = (tmp_path / "par" / "results.csv").read_bytes()
        assert seq == par

    def test_journals_record_equivalent_outcomes(self, tmp_path):
        seq_runner, _ = run_campaign(tmp_path, sub="seq", jobs=1)
        par_runner, _ = run_campaign(tmp_path, sub="par", jobs=4)
        # journal order may differ (completion order); the record set,
        # including stats and elapsed times, may not
        assert journal_runs(seq_runner) == journal_runs(par_runner)

    def test_fault_plans_survive_fanout(self, tmp_path):
        grid = tiny_grid(fault_plans=[None, {"message_loss": 0.05, "seed": 7}],
                         nprocs=[2, 3])
        _, seq = run_campaign(tmp_path, grid=grid, sub="seq", jobs=1)
        _, par = run_campaign(tmp_path, grid=grid, sub="par", jobs=4)
        assert seq.complete and par.complete
        assert (tmp_path / "seq" / "results.csv").read_bytes() == \
               (tmp_path / "par" / "results.csv").read_bytes()

    def test_max_runs_stops_then_parallel_resume_is_identical(self, tmp_path):
        _, ref = run_campaign(tmp_path, sub="ref", jobs=1)
        runner, report = run_campaign(tmp_path, sub="out", jobs=4, max_runs=1)
        assert report.stopped and not report.complete
        assert report.executed == 1
        resumed = runner.execute(resume=True, jobs=4)
        assert resumed.complete and resumed.skipped == 1
        assert (tmp_path / "out" / "results.csv").read_bytes() == \
               (tmp_path / "ref" / "results.csv").read_bytes()

    def test_interrupt_mid_parallel_then_resume(self, tmp_path):
        """An interrupt that lands between completions journals a marker
        and leaves a prefix any later jobs setting can finish."""
        import repro.workflow.parallel as parallel

        real = parallel.run_campaign_cells

        def interrupting(config, pending, jobs, on_record, **kw):
            def wrapped(spec, rec):
                on_record(spec, rec)
                raise CampaignInterrupted(signal.SIGINT)

            return real(config, pending, jobs, wrapped, **kw)

        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(parallel, "run_campaign_cells", interrupting)
            runner = CampaignRunner(
                expand_grid(tiny_grid(supervision={"supervise": False})),
                tmp_path / "out",
            )
            report = runner.execute(jobs=4)
        assert report.interrupted and not report.complete
        docs = [json.loads(line) for line in
                runner.journal_path.read_text().splitlines()]
        assert docs[-1]["type"] == "interrupted"
        assert docs[-1]["signal"] == signal.SIGINT
        # finish sequentially: mixing jobs settings across resumes is fine
        resumed = runner.execute(resume=True, jobs=1)
        assert resumed.complete and not resumed.interrupted
        _, ref = run_campaign(tmp_path, sub="ref", jobs=1)
        assert (tmp_path / "out" / "results.csv").read_bytes() == \
               (tmp_path / "ref" / "results.csv").read_bytes()

    def test_worker_crash_is_resumable_campaign_error(self, tmp_path):
        """On the unsupervised pool, a dead worker surfaces as a
        CampaignError advising --resume — naming the in-flight run ids —
        not a raw BrokenProcessPool traceback; the journal stays usable."""
        import repro.workflow.parallel as parallel

        config = expand_grid(tiny_grid(supervision={"supervise": False}))
        runner = CampaignRunner(config, tmp_path / "out")
        with pytest.MonkeyPatch.context() as mp:
            # every worker dies before completing a cell
            mp.setattr(parallel, "_campaign_cell", _crash_cell)
            with pytest.raises(CampaignError, match="--resume") as exc_info:
                runner.execute(jobs=2)
        # the one-line error names the abandoned cells by run id
        assert "runs in flight" in str(exc_info.value)
        assert any(s.run_id in str(exc_info.value) for s in config.specs)
        resumed = runner.execute(resume=True, jobs=2)
        assert resumed.complete
        _, ref = run_campaign(tmp_path, sub="ref", jobs=1)
        assert (tmp_path / "out" / "results.csv").read_bytes() == \
               (tmp_path / "ref" / "results.csv").read_bytes()

    def test_jobs_one_uses_sequential_path(self, tmp_path, monkeypatch):
        """jobs=1 must not pay process-pool overhead (and must keep
        working where multiprocessing is unavailable)."""
        import repro.workflow.parallel as parallel

        def boom(*a, **kw):  # pragma: no cover - failure path
            raise AssertionError("jobs=1 must not enter the parallel executor")

        monkeypatch.setattr(parallel, "run_campaign_cells", boom)
        _, report = run_campaign(tmp_path, jobs=1)
        assert report.complete


SPEC = WorkflowSpec(
    app="sample_nearest_neighbor", machine="testing", calib_nprocs=4,
    overrides=(("grain", 1000), ("iters", 2), ("msg", 512)), seed=0,
)
CONFIGS = [({"grain": 1000, "msg": 512, "iters": 2}, p) for p in (2, 3, 4)]


class TestParallelValidation:
    def test_series_identical_to_sequential(self):
        seq = validate(SPEC.build(), CONFIGS, name="x")
        par = validate(SPEC.build(), CONFIGS, name="x", jobs=4, spec=SPEC)
        assert [(p.label, p.nprocs, p.measured, p.de, p.am) for p in seq.points] == \
               [(p.label, p.nprocs, p.measured, p.de, p.am) for p in par.points]

    def test_labels_and_no_de_respected(self):
        labels = ["a", "b", "c"]
        par = validate(SPEC.build(), CONFIGS, jobs=4, spec=SPEC,
                       include_de=False, labels=labels)
        assert [p.label for p in par.points] == labels
        assert all(p.de is None for p in par.points)

    def test_parallel_without_spec_rejected(self):
        with pytest.raises(ValueError, match="WorkflowSpec"):
            validate(SPEC.build(), CONFIGS, jobs=4)

    def test_unknown_app_in_spec(self):
        bad = WorkflowSpec(app="nope", machine="testing", calib_nprocs=4)
        with pytest.raises(ValueError, match="unknown app"):
            bad.build()


class TestCalibrateMany:
    def test_parallel_matches_sequential(self):
        seq = calibrate_many(SPEC, seeds=[0, 1, 2], jobs=1)
        par = calibrate_many(SPEC, seeds=[0, 1, 2], jobs=3)
        assert seq == par
        assert [c["seed"] for c in par] == [0, 1, 2]

    def test_seed_zero_is_reference_calibration(self):
        wf = SPEC.build()
        wf.calibrate()
        reps = calibrate_many(SPEC, seeds=[0], jobs=2)  # single seed: inline
        assert reps[0]["wparams"] == wf.wparams
