"""Round-trip and identity-stability tests for the ``repro.api`` contract.

The content hashes are the system's only notion of run identity —
journals, checkpoints, quarantine artifacts and store entries are all
keyed by them — so they may never drift within a schema version.  The
hypothesis suite proves ``to_json``/``from_json`` is lossless and that
the hash is a pure function of identity fields; the golden file
(``golden_hashes.json``, committed) freezes concrete hash values so a
refactor that silently changes the canonical layout fails loudly.
"""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    MODES,
    ApiError,
    CampaignRequest,
    RunRequest,
    RunResult,
    canonical_json,
    content_hash,
)

GOLDEN = json.loads((Path(__file__).parent / "golden_hashes.json").read_text())


# -- strategies ----------------------------------------------------------------

_names = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,11}", fullmatch=True)

_numbers = st.one_of(
    st.integers(min_value=-(10 ** 9), max_value=10 ** 9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)

_inputs = st.dictionaries(_names, _numbers, max_size=4)

_run_requests = st.builds(
    lambda app, mode, nprocs, inputs, seed, timeout: RunRequest.from_json({
        "kind": "run_request", "app": app, "mode": mode, "nprocs": nprocs,
        "inputs": inputs, "seed": seed,
        **({"timeout": timeout} if timeout is not None else {}),
    }),
    app=_names, mode=st.sampled_from(MODES),
    nprocs=st.integers(min_value=1, max_value=4096),
    inputs=_inputs, seed=st.integers(min_value=-(2 ** 31), max_value=2 ** 31),
    timeout=st.one_of(st.none(), st.floats(min_value=0.001, max_value=1e6,
                                           allow_nan=False)),
)


# -- hypothesis round trips ----------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(_run_requests)
def test_run_request_round_trip(req):
    doc = req.to_json()
    again = RunRequest.from_json(json.loads(canonical_json(doc)))
    assert again == req
    assert again.content_hash() == req.content_hash()


@settings(max_examples=200, deadline=None)
@given(_run_requests)
def test_run_request_hash_is_stable_across_instances(req):
    clone = RunRequest(app=req.app, mode=req.mode, nprocs=req.nprocs,
                       inputs=req.inputs, seed=req.seed,
                       fault_plan=req.fault_plan, timeout=req.timeout)
    assert clone.content_hash() == req.content_hash()
    assert clone.run_id == req.content_hash()  # the compatibility alias


@settings(max_examples=100, deadline=None)
@given(st.dictionaries(_names, _numbers, min_size=1, max_size=4))
def test_input_order_never_changes_identity(inputs):
    fwd = RunRequest.from_json(
        {"app": "x", "mode": "de", "nprocs": 2, "inputs": inputs})
    rev = RunRequest.from_json(
        {"app": "x", "mode": "de", "nprocs": 2,
         "inputs": dict(reversed(list(inputs.items())))})
    assert fwd.content_hash() == rev.content_hash()


@settings(max_examples=50, deadline=None)
@given(st.lists(_run_requests, min_size=1, max_size=5,
                unique_by=lambda r: r.content_hash()))
def test_campaign_round_trip_and_context_split(runs):
    req = CampaignRequest(
        name="prop", machine="IBM-SP", runs=tuple(runs),
        calib_procs=4, max_events=10 ** 6,
    ).validate()
    again = CampaignRequest.from_json(json.loads(canonical_json(req.to_json())))
    assert again == req
    assert again.content_hash() == req.content_hash()
    # context hash ignores the run list entirely
    solo = CampaignRequest(name="other", machine="IBM-SP", runs=(runs[0],),
                           calib_procs=4, max_events=10 ** 6)
    assert solo.context_hash() == req.context_hash()
    if len(runs) > 1:
        assert solo.content_hash() != req.content_hash()


@settings(max_examples=100, deadline=None)
@given(st.sampled_from(["outcome", "elapsed", "stats"]),
       st.integers(min_value=0, max_value=10 ** 9))
def test_run_result_round_trip(field, events):
    res = RunResult(run_id="ab" * 8, outcome="ok", attempts=2, elapsed=1.5,
                    stats={"total_events": events})
    assert RunResult.from_json(res.to_json()) == res
    assert res.events == events
    assert res.ok


# -- the frozen identity layout ------------------------------------------------


def test_golden_run_hashes():
    for entry in GOLDEN["runs"]:
        req = RunRequest.from_json(entry["doc"])
        assert req.content_hash() == entry["content_hash"], (
            "run identity layout drifted — this breaks every existing "
            "journal, checkpoint and store; bump SCHEMA_VERSION instead")


def test_golden_campaign_hashes():
    camp = CampaignRequest.from_json(GOLDEN["campaign"]["doc"])
    assert camp.content_hash() == GOLDEN["campaign"]["content_hash"]
    assert camp.context_hash() == GOLDEN["campaign"]["context_hash"]


def test_int_float_inputs_hash_differently():
    """20000 and 20000.0 encode differently in JSON: distinct identities."""
    a = RunRequest.from_json({"app": "x", "mode": "de", "nprocs": 2,
                              "inputs": {"n": 64}})
    b = RunRequest.from_json({"app": "x", "mode": "de", "nprocs": 2,
                              "inputs": {"n": 64.0}})
    assert a.content_hash() != b.content_hash()


def test_content_hash_matches_manual_sha():
    import hashlib

    doc = {"b": 1, "a": [2, 3]}
    expected = hashlib.sha256(
        json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()[:16]
    assert content_hash(doc) == expected


# -- validation rejects --------------------------------------------------------


@pytest.mark.parametrize("doc,fragment", [
    ({"app": "", "mode": "de", "nprocs": 2}, "app"),
    ({"app": "x", "mode": "xx", "nprocs": 2}, "mode"),
    ({"app": "x", "mode": "de", "nprocs": 0}, "nprocs"),
    ({"app": "x", "mode": "de", "nprocs": 2, "inputs": {"n": float("nan")}},
     "finite"),
    ({"app": "x", "mode": "de", "nprocs": 2, "timeout": -1}, "timeout"),
    ({"app": "x", "mode": "de", "nprocs": 2, "schema_version": 99}, "schema"),
])
def test_bad_run_requests_raise_api_error(doc, fragment):
    with pytest.raises(ApiError) as exc:
        RunRequest.from_json(doc)
    assert fragment in str(exc.value).lower() or fragment in exc.value.code


def test_duplicate_runs_rejected():
    run = {"app": "x", "mode": "de", "nprocs": 2}
    with pytest.raises(ApiError, match="duplicate"):
        CampaignRequest.from_json(
            {"name": "dup", "machine": "IBM-SP", "runs": [run, dict(run)]})


def test_api_error_round_trip():
    err = ApiError("quota_events", "slow down", http_status=429, retry_after=2.5)
    doc = err.to_json()
    again = ApiError.from_json(doc, http_status=429)
    assert (again.code, again.retry_after, again.http_status) == \
        ("quota_events", 2.5, 429)
