"""The deprecation shims keep old dict entry points working, warn once
per call, and preserve run identity exactly."""

import warnings

import pytest

from repro.api import (
    RunRequest,
    campaign_config_from_dict,
    run_spec_from_dict,
    workflow_spec_from_dict,
)


def test_run_spec_from_dict_warns_and_matches_typed_hash():
    doc = {"app": "sweep3d", "mode": "am", "nprocs": 64,
           "inputs": {"it": 64, "jt": 64}, "seed": 3}
    with pytest.warns(DeprecationWarning, match="repro.api.RunRequest"):
        old = run_spec_from_dict(dict(doc))
    new = RunRequest.from_json(dict(doc))
    # identical identity: journals and stores cannot tell the paths apart
    assert old == new
    assert old.content_hash() == new.content_hash()


def test_run_spec_from_dict_warns_exactly_once():
    doc = {"app": "x", "mode": "de", "nprocs": 2}
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        run_spec_from_dict(doc)
    assert sum(issubclass(w.category, DeprecationWarning) for w in caught) == 1


def test_campaign_config_from_dict_matches_expand_grid():
    from repro.workflow.campaign import expand_grid

    grid = {"name": "shim", "app": "sample_nearest_neighbor",
            "modes": ["de"], "nprocs": [2, 4], "calib_procs": 2}
    with pytest.warns(DeprecationWarning, match="CampaignRequest"):
        old = campaign_config_from_dict(dict(grid))
    new = expand_grid(dict(grid))
    assert old.config_hash == new.config_hash
    assert [s.run_id for s in old.specs] == [s.run_id for s in new.specs]


def test_workflow_spec_from_dict_adapts_and_validates():
    with pytest.warns(DeprecationWarning, match="WorkflowSpec"):
        spec = workflow_spec_from_dict({
            "app": "tomcatv", "machine": "IBM-SP", "calib_nprocs": 16,
            "overrides": {"n": 256}, "seed": 1,
        })
    assert spec.app == "tomcatv"
    assert spec.overrides == (("n", 256),)
    with pytest.warns(DeprecationWarning):
        with pytest.raises(ValueError, match="unknown workflow-spec keys"):
            workflow_spec_from_dict({"app": "x", "machine": "m",
                                     "calib_nprocs": 2, "bogus": 1})


def test_runspec_alias_is_the_api_type():
    from repro.workflow.campaign import RunSpec

    assert RunSpec is RunRequest
