"""Legacy setup shim: this environment's setuptools lacks the wheel package,
so editable installs must go through `setup.py develop` (see README)."""
from setuptools import setup

setup()
